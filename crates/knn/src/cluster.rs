//! Cluster-and-Conquer KNN construction (Giakkoupis, Kermarrec & Ruas —
//! see PAPERS.md): hash every user into `tables` independent clusters via a
//! cheap fingerprint-derived key, brute-force each cluster while its rows
//! are cache-resident, and deterministically merge the per-cluster top-k
//! partials.
//!
//! The cluster key is *not* a full MinHash pass over the profile. Each user
//! first folds its items into a tiny one-off **blip** — a few 64-bit words
//! set by hashing every item exactly once, i.e. a miniature SHF — and each
//! table then takes the min-wise smallest blip *bit* under a per-table
//! bit-priority hash ([`crate::lsh::table_seed`] derives the seeds, exactly
//! like LSH). Two users land in the same cluster of table `t` with
//! probability equal to the Jaccard index of their blips, a noisy but
//! monotone proxy of their profile similarity. The per-table cost is
//! `O(popcount(blip))` — bounded by the blip width, independent of the
//! profile size — where LSH pays a full `O(|profile|)` permutation scan per
//! table and a hash-map insert per (user, table).
//!
//! Zipf-hot buckets are handled like `oocbuild::max_bucket`: a cluster
//! larger than [`Cluster::max_cluster`] is skipped entirely (`0` disables
//! the cap). Every surviving cluster is scanned with the same discipline as
//! [`crate::brute::BruteForce`]: rows gathered through
//! [`Similarity::similarity_batch`] (the SIMD gather kernels for
//! fingerprint providers), each unordered pair visited **once globally** —
//! a pair co-clustered in several tables is charged to the first table
//! where it shares an uncapped cluster. By default every surviving pair
//! scores straight into the worker's global top-k partials; the opt-in
//! [`Cluster::prune`] path instead tracks per-cluster-local top-k
//! thresholds and skips pairs whose
//! [`Similarity::similarity_upper_bound`] cannot beat them. Local
//! thresholds only ever under-estimate the merged ones, so pruning never
//! changes the output; and because both paths depend only on the
//! assignment and each cluster's own fixed scan order (never on which
//! worker got which cluster), the graph *and* the eval counters are
//! bit-identical for any thread count, kernel, and work-stealing
//! schedule. DESIGN.md §17.

use crate::graph::{BuildStats, CsrBuilder, KnnResult};
use crate::lsh::table_seed;
use goldfinger_core::hash::splitmix64_mix;
use goldfinger_core::parallel::{par_fold_dynamic, par_map_indexed};
use goldfinger_core::profile::ProfileStore;
use goldfinger_core::similarity::Similarity;
use goldfinger_core::topk::TopK;
use goldfinger_obs::trace;
use goldfinger_obs::{BuildObserver, IterationEvent, NoopObserver, Phase};
use std::time::{Duration, Instant};

/// Default blip width in 64-bit words: 16384 bucket slots per table — wide
/// enough that paper-scale profiles (tens to a few hundred items) set
/// nearly one bit per item, so the blip Jaccard tracks the profile Jaccard
/// and per-table collision probabilities match LSH's, while the 2 KiB blip
/// stays comfortably cache-resident (and, with the set bits collected
/// once, the per-table argmin never rescans it).
const DEFAULT_BLIP_WORDS: usize = 256;

/// Key of a user with an empty profile: member of no cluster in any table.
const NO_KEY: u32 = u32::MAX;

/// Cluster-and-Conquer parameters.
#[derive(Debug, Clone, Copy)]
pub struct Cluster {
    /// Number of independent clusterings (one bit-priority hash each).
    pub tables: usize,
    /// Blip width in 64-bit words (`0` = default of 256, i.e. 16384
    /// cluster slots per table). Wider blips make smaller, purer clusters.
    pub blip_words: usize,
    /// Skip clusters larger than this many users (`0` = no cap), mirroring
    /// `oocbuild`'s `max_bucket`: Zipf-hot buckets would otherwise devolve
    /// into quadratic scans of near-random candidates.
    pub max_cluster: usize,
    /// Seed deriving the blip item hash and the per-table bit priorities.
    pub seed: u64,
    /// Worker threads for the per-cluster scans (`0` = default parallelism,
    /// `1` = serial). Output and counters are bit-identical for any thread
    /// count.
    pub threads: usize,
    /// Skip evaluations whose [`Similarity::similarity_upper_bound`] cannot
    /// beat the pair's per-cluster-local top-k thresholds. Never changes
    /// the output graph; skipped pairs land in [`BuildStats::pruned_evals`].
    /// Off by default: at the paper's parameters clusters are smaller than
    /// `k`, so the thresholds needed to prune never materialise and the
    /// bookkeeping only slows the scan down (the fast path skips the
    /// cluster-local heaps entirely).
    pub prune: bool,
}

impl Default for Cluster {
    fn default() -> Self {
        Cluster {
            tables: 14,
            blip_words: 0,
            max_cluster: 256,
            seed: 0xC1A5,
            threads: 1,
            prune: false,
        }
    }
}

/// The cluster layout one [`Cluster`] configuration induces on a
/// population: per-(table, bucket) membership lists in CSR form, plus the
/// per-user keys the scan's cross-table dedup check reads. Exposed so
/// harnesses can report layout statistics ([`ClusterAssignment::stats`])
/// without re-running a build.
#[derive(Debug)]
pub struct ClusterAssignment {
    tables: usize,
    buckets: usize,
    cap: usize,
    /// `dedup[u * tables + t]`: user `u`'s bucket key in table `t`, with
    /// empty-profile and capped-cluster slots replaced by a per-user
    /// sentinel (high bit set, low bits the user id) that never equals
    /// another user's entry. The first-shared-table check then reduces to a
    /// word-equality scan of two contiguous rows — no size lookups, no
    /// branching on the cap.
    dedup: Vec<u32>,
    /// Bucket membership, grouped by cluster (ascending user ids within
    /// each), sliced by `clusters`.
    members: Vec<u32>,
    /// Every non-empty cluster as `(flat_bucket, start, len)` into
    /// `members`, ascending by flat bucket `t * buckets + b`. Sparse on
    /// purpose: wide blips make `tables * buckets` huge while only O(n ·
    /// tables) slots are ever occupied.
    clusters: Vec<(u32, u32, u32)>,
    /// Indices into `clusters` of the ones the scan visits: at least two
    /// members and within the cap.
    scannable: Vec<u32>,
}

/// Summary of a [`ClusterAssignment`], the source of the `"cluster"` extra
/// in JSON run reports.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterStats {
    /// Independent clusterings.
    pub tables: usize,
    /// Bucket slots per table (blip bits).
    pub buckets: usize,
    /// Non-empty clusters across all tables.
    pub clusters: usize,
    /// Clusters the scan visits (≥ 2 members, within the cap).
    pub scannable: usize,
    /// Clusters skipped for exceeding the cap.
    pub capped: usize,
    /// Largest cluster (capped ones included).
    pub max_size: usize,
    /// Mean size over scannable clusters.
    pub mean_size: f64,
    /// Σ `size·(size−1)/2` over scannable clusters: every in-cluster pair
    /// slot before cross-table dedup. Together with the build's
    /// `similarity_evals + pruned_evals` (the *distinct* co-clustered
    /// pairs) this yields the dedup rate.
    pub pair_slots: u64,
    /// `size_hist[i]`: non-empty clusters with `floor(log2(size)) == i`.
    pub size_hist: Vec<u64>,
}

impl ClusterAssignment {
    /// Layout statistics (cluster counts, size histogram, pair slots).
    pub fn stats(&self) -> ClusterStats {
        let mut stats = ClusterStats {
            tables: self.tables,
            buckets: self.buckets,
            clusters: 0,
            scannable: 0,
            capped: 0,
            max_size: 0,
            mean_size: 0.0,
            pair_slots: 0,
            size_hist: Vec::new(),
        };
        let mut scanned_members = 0usize;
        for &(_, _, size) in &self.clusters {
            let size = size as usize;
            stats.clusters += 1;
            stats.max_size = stats.max_size.max(size);
            let log2 = usize::BITS as usize - 1 - size.leading_zeros() as usize;
            if stats.size_hist.len() <= log2 {
                stats.size_hist.resize(log2 + 1, 0);
            }
            stats.size_hist[log2] += 1;
            if self.cap != 0 && size > self.cap {
                stats.capped += 1;
            } else if size >= 2 {
                stats.scannable += 1;
                scanned_members += size;
                stats.pair_slots += (size as u64) * (size as u64 - 1) / 2;
            }
        }
        if stats.scannable > 0 {
            stats.mean_size = scanned_members as f64 / stats.scannable as f64;
        }
        stats
    }

    /// Whether the unordered pair `(u, v)` shares an uncapped cluster in a
    /// table before `t` — in which case the scan of table `t` must not
    /// visit it again. Deciding by the *first* shared table makes the
    /// visited-pair set a function of the assignment alone, independent of
    /// cluster scheduling.
    #[inline]
    fn seen_before_table(&self, u: u32, v: u32, t: usize) -> bool {
        let du = &self.dedup[u as usize * self.tables..][..t];
        let dv = &self.dedup[v as usize * self.tables..][..t];
        du.iter().zip(dv).any(|(a, b)| a == b)
    }
}

impl Cluster {
    /// Blip width in words after applying the default.
    #[inline]
    fn words(&self) -> usize {
        if self.blip_words == 0 {
            DEFAULT_BLIP_WORDS
        } else {
            self.blip_words
        }
    }

    /// Assigns every user to its per-table clusters: one blip per user
    /// (each item hashed exactly once), one min-wise bit key per table,
    /// counting-sort into CSR membership lists.
    ///
    /// # Panics
    /// Panics if `tables == 0`.
    pub fn assign(&self, profiles: &ProfileStore) -> ClusterAssignment {
        assert!(self.tables > 0, "need at least one table");
        let n = profiles.n_users();
        let tables = self.tables;
        let words = self.words();
        let buckets = words * 64;
        let blip_seed = splitmix64_mix(self.seed ^ 0xB11F);
        let seeds: Vec<u64> = (0..tables).map(|t| table_seed(self.seed, t)).collect();

        // Per-user key rows, parallel and order-preserving (so the result
        // is thread-count invariant and clamping to the hardware is
        // observation-free). The blip is rebuilt per user on the closure's
        // stack; its set bits are then collected once, so the per-table
        // argmin costs O(popcount) instead of rescanning every word per
        // table.
        let hw = std::thread::available_parallelism().map_or(1, |p| p.get());
        let workers = goldfinger_core::parallel::effective_threads(self.threads).min(hw);
        let key_rows: Vec<Vec<u32>> = par_map_indexed(n, workers, |u| {
            let mut blip = vec![0u64; words];
            for &item in profiles.items(u as u32) {
                let h = splitmix64_mix(item as u64 ^ blip_seed);
                let b = (h % buckets as u64) as usize;
                blip[b >> 6] |= 1u64 << (b & 63);
            }
            let mut set_bits: Vec<u32> = Vec::new();
            for (w, &word) in blip.iter().enumerate() {
                let mut bits = word;
                while bits != 0 {
                    set_bits.push((w * 64) as u32 + bits.trailing_zeros());
                    bits &= bits - 1;
                }
            }
            seeds
                .iter()
                .map(|&ts| {
                    let mut best = u64::MAX;
                    let mut key = NO_KEY;
                    for &b in &set_bits {
                        // splitmix64_mix is a bijection, so ranks are
                        // distinct and the argmin is unique.
                        let rank = splitmix64_mix(b as u64 ^ ts);
                        if rank < best {
                            best = rank;
                            key = b;
                        }
                    }
                    key
                })
                .collect()
        });
        // Sparse CSR build: wide blips make `tables * buckets` far larger
        // than the O(n · tables) occupied slots, so a dense counting sort
        // would spend more time zeroing size/offset arrays than clustering.
        // Sorting the (flat bucket, user) pairs instead groups each cluster
        // contiguously with ascending user ids, at a cost that depends only
        // on the population.
        let mut entries: Vec<u64> = Vec::with_capacity(n * tables);
        for (u, row) in key_rows.iter().enumerate() {
            for (t, &k) in row.iter().enumerate() {
                if k != NO_KEY {
                    let fb = (t * buckets + k as usize) as u64;
                    entries.push(fb << 32 | u as u64);
                }
            }
        }
        // All pairs are distinct, so the unstable sort is deterministic.
        entries.sort_unstable();

        let cap = self.max_cluster;
        let mut members = Vec::with_capacity(entries.len());
        let mut clusters: Vec<(u32, u32, u32)> = Vec::new();
        let mut scannable: Vec<u32> = Vec::new();
        // Dedup view of the keys: a slot that can never host a shared scan
        // (empty profile, capped cluster) becomes a per-user sentinel, so
        // the hot first-shared-table check is a branch-free equality scan.
        // Real keys are bucket indices (< 2^31), sentinels have the high
        // bit set — the two ranges cannot collide.
        let mut dedup: Vec<u32> = (0..n)
            .flat_map(|u| std::iter::repeat_n(0x8000_0000 | u as u32, tables))
            .collect();
        let mut i = 0;
        while i < entries.len() {
            let fb = entries[i] >> 32;
            let mut j = i + 1;
            while j < entries.len() && entries[j] >> 32 == fb {
                j += 1;
            }
            let (start, len) = (members.len() as u32, (j - i) as u32);
            for &e in &entries[i..j] {
                members.push(e as u32);
            }
            let hot = cap != 0 && len as usize > cap;
            if !hot {
                let (t, key) = ((fb as usize) / buckets, (fb as usize % buckets) as u32);
                for &e in &entries[i..j] {
                    dedup[e as u32 as usize * tables + t] = key;
                }
                if len >= 2 {
                    scannable.push(clusters.len() as u32);
                }
            }
            clusters.push((fb as u32, start, len));
            i = j;
        }

        ClusterAssignment {
            tables,
            buckets,
            cap,
            dedup,
            members,
            clusters,
            scannable,
        }
    }

    /// Builds an approximate KNN graph.
    ///
    /// `profiles` supplies the item sets the blips are derived from; `sim`
    /// scores the in-cluster candidates (explicit provider = native run,
    /// SHF provider = GoldFinger run).
    ///
    /// # Panics
    /// Panics if `k == 0`, `tables == 0`, or the provider's population
    /// differs from the profile store's.
    pub fn build<S: Similarity + ?Sized>(
        &self,
        profiles: &ProfileStore,
        sim: &S,
        k: usize,
    ) -> KnnResult {
        self.build_observed(profiles, sim, k, &NoopObserver)
    }

    /// Builds the graph, reporting progress to `obs`: one span for blip and
    /// cluster assembly ([`Phase::CandidateGeneration`]), one for the
    /// per-cluster scans ([`Phase::Join`]), one for the deterministic
    /// reduction ([`Phase::Merge`]), and a single [`IterationEvent`] with
    /// the final counters. Observation never changes the output; with the
    /// default [`NoopObserver`] the hooks compile to nothing.
    ///
    /// # Panics
    /// Same contract as [`Cluster::build`].
    pub fn build_observed<S: Similarity + ?Sized, O: BuildObserver>(
        &self,
        profiles: &ProfileStore,
        sim: &S,
        k: usize,
        obs: &O,
    ) -> KnnResult {
        assert!(k > 0, "k must be positive");
        assert_eq!(
            profiles.n_users(),
            sim.n_users(),
            "profile store and similarity provider disagree on population"
        );
        let n = profiles.n_users();
        let start = Instant::now();

        let assign_start = O::ENABLED.then(Instant::now);
        let assign_trace = trace::span("phase", "candidate_generation");
        let assignment = self.assign(profiles);
        drop(assign_trace);
        if let Some(t) = assign_start {
            obs.on_span(Phase::CandidateGeneration, t.elapsed());
        }

        // One worker's private fold state: global top-k partials over every
        // user (merged deterministically afterwards, BruteForce-style),
        // per-cluster-local partials for the prune thresholds, and the
        // batched-scoring buffers. No locks on the hot path.
        struct ScanState {
            tops: Vec<TopK>,
            local: Vec<TopK>,
            ids: Vec<u32>,
            pos: Vec<u32>,
            sims: Vec<f64>,
            evals: u64,
            pruned: u64,
        }
        let prune = self.prune;
        let asg = &assignment;
        // The output is worker-count invariant, so workers beyond the
        // hardware parallelism buy nothing — each one would only add an
        // n-sized top-k fold state to thrash the cache during the scan and
        // lengthen the merge. Clamp the requested count to the hardware.
        let hw = std::thread::available_parallelism().map_or(1, |p| p.get());
        let workers = goldfinger_core::parallel::effective_threads(self.threads).min(hw);
        let scan_start = O::ENABLED.then(Instant::now);
        let scan_trace = trace::span_arg("phase", "join", asg.scannable.len() as u64);
        let mut states = par_fold_dynamic(
            asg.scannable.len(),
            workers,
            1,
            |_| ScanState {
                tops: (0..n).map(|_| TopK::new(k)).collect(),
                local: Vec::new(),
                ids: Vec::new(),
                pos: Vec::new(),
                sims: Vec::new(),
                evals: 0,
                pruned: 0,
            },
            |state, c| {
                let (fb, start, len) = asg.clusters[asg.scannable[c] as usize];
                let t = fb as usize / asg.buckets;
                let m = &asg.members[start as usize..(start + len) as usize];
                if !prune {
                    // Fast path: no thresholds to track, so every surviving
                    // pair scores straight into the worker's global
                    // partials. The visited-pair set is fixed by the
                    // assignment alone (dedup is a pure key lookup) and the
                    // top-k kept set is insertion-order independent, so this
                    // stays bit-identical for any schedule while skipping
                    // the per-cluster heap churn: clusters are usually
                    // smaller than k, so cluster-local heaps accept every
                    // single offer and then replay them all into the global
                    // partials — twice the heap work for nothing.
                    for i in 0..m.len() {
                        let u = m[i];
                        state.ids.clear();
                        for &v in &m[i + 1..] {
                            if !asg.seen_before_table(u, v, t) {
                                state.ids.push(v);
                            }
                        }
                        if state.ids.is_empty() {
                            continue;
                        }
                        state.evals += state.ids.len() as u64;
                        if state.ids.len() <= 2 {
                            // Sparse populations leave most rows with one
                            // or two survivors; the per-pair entry point
                            // computes bit-identical values without the
                            // gather-batch setup.
                            for &v in &state.ids {
                                let s = sim.similarity(u, v);
                                state.tops[u as usize].offer(s, v);
                                state.tops[v as usize].offer(s, u);
                            }
                            continue;
                        }
                        state.sims.clear();
                        state.sims.resize(state.ids.len(), 0.0);
                        sim.similarity_batch(u, &state.ids, &mut state.sims);
                        for (&v, &s) in state.ids.iter().zip(&state.sims) {
                            state.tops[u as usize].offer(s, v);
                            state.tops[v as usize].offer(s, u);
                        }
                    }
                    return;
                }
                while state.local.len() < m.len() {
                    state.local.push(TopK::new(k));
                }
                for top in &mut state.local[..m.len()] {
                    top.clear();
                }
                for i in 0..m.len() {
                    let u = m[i];
                    // Decide the whole row first — dedup against earlier
                    // tables, then the upper bound against the thresholds
                    // as of the row start — so the survivors score through
                    // one gather-kernel batch. Freezing the thresholds for
                    // the row keeps decisions a pure function of the
                    // cluster's scan order (thread- and
                    // schedule-independent) and only ever under-prunes.
                    state.ids.clear();
                    state.pos.clear();
                    let ti = state.local[i].threshold();
                    for (j, &v) in m.iter().enumerate().skip(i + 1) {
                        if asg.seen_before_table(u, v, t) {
                            continue;
                        }
                        if let (Some(tu), Some(tv)) = (ti, state.local[j].threshold()) {
                            if sim
                                .similarity_upper_bound(u, v)
                                .is_some_and(|b| b < tu && b < tv)
                            {
                                state.pruned += 1;
                                continue;
                            }
                        }
                        state.ids.push(v);
                        state.pos.push(j as u32);
                    }
                    if state.ids.is_empty() {
                        continue;
                    }
                    state.sims.clear();
                    state.sims.resize(state.ids.len(), 0.0);
                    sim.similarity_batch(u, &state.ids, &mut state.sims);
                    state.evals += state.ids.len() as u64;
                    for ((&v, &j), &s) in state.ids.iter().zip(&state.pos).zip(&state.sims) {
                        state.local[i].offer(s, v);
                        state.local[j as usize].offer(s, u);
                    }
                }
                for (i, &u) in m.iter().enumerate() {
                    for e in state.local[i].entries() {
                        state.tops[u as usize].offer(e.sim, e.user);
                    }
                }
            },
        );
        drop(scan_trace);
        if let Some(t) = scan_start {
            obs.on_span(Phase::Join, t.elapsed());
        }

        // Deterministic reduction in slot order: each distinct pair was
        // scanned by exactly one worker (clusters are atomic units and the
        // first-shared-table rule dedups across tables), so folding the
        // insertion-order-independent partials yields the exact top-k of
        // all offered pairs, bit-identical for any schedule.
        let merge_start = O::ENABLED.then(Instant::now);
        let merge_trace = trace::span("phase", "merge");
        let mut merged = states.remove(0);
        for state in states {
            merged.evals += state.evals;
            merged.pruned += state.pruned;
            for (top, part) in merged.tops.iter_mut().zip(&state.tops) {
                for e in part.entries() {
                    top.offer(e.sim, e.user);
                }
            }
        }
        // Drain each selector straight into the CSR arena: sort in place,
        // no per-user intermediate list.
        let mut csr = CsrBuilder::with_capacity(k, n);
        for top in &mut merged.tops {
            csr.push_sorted(top.sorted_entries());
        }
        let graph = csr.finish();
        drop(merge_trace);
        let wall = start.elapsed();
        if O::ENABLED {
            if let Some(t) = merge_start {
                obs.on_span(Phase::Merge, t.elapsed());
            }
            obs.on_iteration(IterationEvent {
                iteration: 1,
                similarity_evals: merged.evals,
                pruned_evals: merged.pruned,
                updates: 0,
                threshold: 0.0,
                wall,
            });
        }
        KnnResult {
            graph,
            stats: BuildStats {
                similarity_evals: merged.evals,
                pruned_evals: merged.pruned,
                iterations: 1,
                wall,
                prep_wall: Duration::ZERO,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use goldfinger_core::similarity::ExplicitJaccard;

    fn clustered() -> ProfileStore {
        let mut lists = Vec::new();
        for u in 0..10u32 {
            let mut items: Vec<u32> = (0..25).collect();
            items.push(200 + u);
            lists.push(items);
        }
        for u in 0..10u32 {
            let mut items: Vec<u32> = (100..125).collect();
            items.push(300 + u);
            lists.push(items);
        }
        ProfileStore::from_item_lists(lists)
    }

    /// Naive reference for the visited-pair set: distinct unordered pairs
    /// sharing at least one uncapped cluster.
    fn distinct_coclustered_pairs(c: &Cluster, profiles: &ProfileStore) -> u64 {
        let asg = c.assign(profiles);
        let n = profiles.n_users();
        let mut count = 0u64;
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if asg.seen_before_table(u, v, asg.tables) {
                    count += 1;
                }
            }
        }
        count
    }

    #[test]
    fn same_cluster_users_find_each_other() {
        let profiles = clustered();
        let sim = ExplicitJaccard::new(&profiles);
        let result = Cluster::default().build(&profiles, &sim, 5);
        let mut found = 0usize;
        let mut total = 0usize;
        for u in 0..20u32 {
            for s in result.graph.neighbors(u) {
                total += 1;
                if (s.user < 10) == (u < 10) {
                    found += 1;
                }
            }
        }
        assert!(total > 0);
        assert_eq!(found, total, "cross-cluster neighbours found");
    }

    #[test]
    fn empty_profiles_get_no_neighbors_but_keep_slots() {
        let profiles =
            ProfileStore::from_item_lists(vec![(0..30).collect(), (0..30).collect(), vec![]]);
        let sim = ExplicitJaccard::new(&profiles);
        let result = Cluster::default().build(&profiles, &sim, 2);
        assert_eq!(result.graph.n_users(), 3);
        assert!(result.graph.neighbors(2).is_empty());
        assert_eq!(result.graph.neighbors(0)[0].user, 1);
    }

    #[test]
    fn pair_accounting_matches_the_assignment() {
        let profiles = clustered();
        let sim = ExplicitJaccard::new(&profiles);
        for cap in [0usize, 8] {
            let c = Cluster {
                max_cluster: cap,
                ..Cluster::default()
            };
            let r = c.build(&profiles, &sim, 5);
            let distinct = distinct_coclustered_pairs(&c, &profiles);
            assert_eq!(
                r.stats.similarity_evals + r.stats.pruned_evals,
                distinct,
                "cap={cap}: evals+pruned must equal the distinct co-clustered pairs"
            );
            let stats = c.assign(&profiles).stats();
            assert!(
                distinct <= stats.pair_slots,
                "cap={cap}: dedup can only shrink the pair count"
            );
        }
    }

    #[test]
    fn parallel_scan_is_bit_identical_to_serial() {
        let profiles = clustered();
        let sim = ExplicitJaccard::new(&profiles);
        let serial = Cluster::default().build(&profiles, &sim, 5);
        for threads in [2usize, 3, 8] {
            let par = Cluster {
                threads,
                ..Cluster::default()
            }
            .build(&profiles, &sim, 5);
            assert_eq!(par.stats.similarity_evals, serial.stats.similarity_evals);
            assert_eq!(par.stats.pruned_evals, serial.stats.pruned_evals);
            for u in 0..20u32 {
                assert_eq!(
                    par.graph.neighbors(u),
                    serial.graph.neighbors(u),
                    "threads={threads} u={u}"
                );
            }
        }
    }

    #[test]
    fn pruning_never_changes_the_graph() {
        let profiles = clustered();
        let sim = ExplicitJaccard::new(&profiles);
        let unpruned = Cluster {
            prune: false,
            ..Cluster::default()
        }
        .build(&profiles, &sim, 3);
        for threads in [1usize, 4] {
            let pruned = Cluster {
                threads,
                ..Cluster::default()
            }
            .build(&profiles, &sim, 3);
            assert_eq!(
                unpruned.stats.similarity_evals,
                pruned.stats.similarity_evals + pruned.stats.pruned_evals,
                "pair accounting"
            );
            for u in 0..20u32 {
                assert_eq!(
                    unpruned.graph.neighbors(u),
                    pruned.graph.neighbors(u),
                    "threads={threads} u={u}"
                );
            }
        }
    }

    #[test]
    fn capped_clusters_are_skipped_entirely() {
        // Twenty clones share every cluster in every table; a cap below the
        // clone count leaves them neighbourless while the pair below stays.
        let mut lists: Vec<Vec<u32>> = (0..20).map(|_| (0..30).collect()).collect();
        lists.push((500..540).collect());
        lists.push((500..540).collect());
        let profiles = ProfileStore::from_item_lists(lists);
        let sim = ExplicitJaccard::new(&profiles);
        let capped = Cluster {
            max_cluster: 10,
            ..Cluster::default()
        }
        .build(&profiles, &sim, 3);
        for u in 0..20u32 {
            assert!(
                capped.graph.neighbors(u).is_empty(),
                "user {u} sits only in over-cap clusters"
            );
        }
        assert_eq!(capped.graph.neighbors(20)[0].user, 21);
        let stats = Cluster {
            max_cluster: 10,
            ..Cluster::default()
        }
        .assign(&profiles)
        .stats();
        assert!(stats.capped > 0, "cap must have fired: {stats:?}");
    }

    #[test]
    fn layout_stats_add_up() {
        let profiles = clustered();
        let c = Cluster::default();
        let stats = c.assign(&profiles).stats();
        assert_eq!(stats.tables, Cluster::default().tables);
        assert_eq!(stats.buckets, DEFAULT_BLIP_WORDS * 64);
        assert!(stats.clusters > 0);
        assert_eq!(stats.size_hist.iter().sum::<u64>(), stats.clusters as u64);
        assert!(stats.max_size <= 20);
        assert!(stats.pair_slots > 0);
        assert_eq!(stats.capped, 0);
    }

    #[test]
    fn more_tables_find_no_fewer_pairs() {
        let profiles = clustered();
        let small = Cluster {
            tables: 1,
            ..Cluster::default()
        };
        let large = Cluster {
            tables: 12,
            ..Cluster::default()
        };
        assert!(
            distinct_coclustered_pairs(&large, &profiles)
                >= distinct_coclustered_pairs(&small, &profiles)
        );
    }

    #[test]
    #[should_panic(expected = "disagree")]
    fn population_mismatch_panics() {
        let profiles = clustered();
        let other = ProfileStore::from_item_lists(vec![vec![1]]);
        let sim = ExplicitJaccard::new(&other);
        let _ = Cluster::default().build(&profiles, &sim, 5);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let profiles = clustered();
        let sim = ExplicitJaccard::new(&profiles);
        let _ = Cluster::default().build(&profiles, &sim, 0);
    }
}
