//! # goldfinger-knn
//!
//! KNN graph construction algorithms, generic over
//! [`goldfinger_core::similarity::Similarity`] providers. Running any
//! algorithm with the explicit provider reproduces the paper's *native*
//! baselines; swapping in the SHF provider turns the same algorithm into its
//! *GoldFinger* variant — no other change required, which is the paper's
//! genericity claim.
//!
//! | Algorithm | Module | Character |
//! |-----------|--------|-----------|
//! | Brute Force | [`brute`] | exact, `n(n−1)/2` comparisons |
//! | NNDescent | [`nndescent`] | greedy local joins + reverse graph |
//! | Hyrec | [`hyrec`] | greedy neighbours-of-neighbours |
//! | LSH | [`lsh`] | MinHash bucketing, in-bucket scans |
//! | KIFF | [`kiff`] | inverted-index co-rating candidates |
//! | Cluster | [`cluster`] | blip-hashed cache-resident cluster scans |
//!
//! All six implement the [`KnnBuilder`] trait ([`builder`]); harnesses
//! enumerate them through the [`builders`] registry instead of naming
//! concrete types, and the greedy refiners share the iterative scaffolding
//! of [`engine::RefineEngine`].
//!
//! ```
//! use goldfinger_core::shf::ShfParams;
//! use goldfinger_core::similarity::{ExplicitJaccard, ShfJaccard};
//! use goldfinger_core::profile::ProfileStore;
//! use goldfinger_knn::brute::BruteForce;
//!
//! let profiles = ProfileStore::from_item_lists(vec![
//!     (0..40).collect(), (20..60).collect(), (100..140).collect(),
//! ]);
//! // Native…
//! let exact = BruteForce::default().build(&ExplicitJaccard::new(&profiles), 2);
//! // …and GoldFinger, same algorithm:
//! let fps = ShfParams::default().fingerprint_store(&profiles);
//! let approx = BruteForce::default().build(&ShfJaccard::new(&fps), 2);
//! assert_eq!(exact.graph.neighbors(0)[0].user, approx.graph.neighbors(0)[0].user);
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod brute;
pub mod builder;
pub mod builders;
pub mod cluster;
pub mod csr;
pub mod dynamic;
pub mod engine;
pub mod graph;
pub mod hyrec;
pub mod instrument;
pub mod kiff;
pub mod lsh;
pub mod metrics;
pub mod neighborlist;
pub mod nndescent;
pub mod oocbuild;
pub mod oplog;
pub mod serial;
pub mod serve;
pub mod shard;

pub use analysis::{degree_stats, edge_overlap, in_degrees, reverse_graph, DegreeStats};
// Observability: every builder also has a `build_observed` variant taking a
// `BuildObserver` (re-exported from `goldfinger-obs` for convenience).
pub use brute::BruteForce;
pub use builder::{BuildInput, ErasedBuilder, KnnBuilder};
pub use cluster::{Cluster, ClusterAssignment, ClusterStats};
pub use csr::CompactGraph;
pub use dynamic::DynamicKnn;
pub use engine::{JoinStrategy, RefineEngine};
pub use goldfinger_obs::{BuildObserver, IterationEvent, NoopObserver, RecordingObserver};
pub use graph::{BuildStats, KnnGraph, KnnResult};
pub use hyrec::Hyrec;
pub use instrument::{CountingSimilarity, MemoryTraffic};
pub use kiff::Kiff;
pub use lsh::Lsh;
pub use metrics::{average_similarity, edge_recall, quality};
pub use nndescent::NNDescent;
pub use oocbuild::{OocConfig, OocStats};
pub use oplog::{write_op_log, OpLogReader};
pub use serial::{read_knn_graph, write_knn_graph};
pub use serve::{
    replay, replay_stream, synth_op_stream, synth_ops, KnnService, Op, ReplayOutcome, ServeConfig,
    ServiceSnapshot,
};
pub use shard::{Repair, Shard, ShardSet};
