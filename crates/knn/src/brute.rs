//! Exact KNN graph construction by exhaustive pairwise comparison.

use crate::graph::{BuildStats, KnnGraph, KnnResult};
use goldfinger_core::parallel::par_map_indexed;
use goldfinger_core::similarity::Similarity;
use goldfinger_core::topk::TopK;
use std::time::Instant;

/// Brute-force builder: computes all `n(n−1)/2` similarities and keeps the
/// top `k` per user. Exact (up to estimator error of the provider), and the
/// reference point of every experiment.
#[derive(Debug, Clone, Copy)]
pub struct BruteForce {
    /// Number of worker threads (0 = available parallelism).
    pub threads: usize,
}

impl Default for BruteForce {
    fn default() -> Self {
        BruteForce { threads: 1 }
    }
}

impl BruteForce {
    /// Builds the exact KNN graph for the given provider.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn build<S: Similarity>(&self, sim: &S, k: usize) -> KnnResult {
        assert!(k > 0, "k must be positive");
        let n = sim.n_users();
        let start = Instant::now();
        // Each user's top-k scan is independent: embarrassingly parallel.
        let neighbors = par_map_indexed(n, self.threads, |u| {
            let mut top = TopK::new(k);
            for v in 0..n {
                if v == u {
                    continue;
                }
                top.offer(sim.similarity(u as u32, v as u32), v as u32);
            }
            top.into_sorted()
        });
        // Each ordered pair is evaluated once per side in the parallel scan.
        let evals = (n as u64) * (n as u64).saturating_sub(1);
        KnnResult {
            graph: KnnGraph::from_lists(k, neighbors),
            stats: BuildStats {
                similarity_evals: evals,
                iterations: 1,
                wall: start.elapsed(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use goldfinger_core::profile::ProfileStore;
    use goldfinger_core::similarity::ExplicitJaccard;

    fn store() -> ProfileStore {
        ProfileStore::from_item_lists(vec![
            vec![1, 2, 3, 4],   // 0
            vec![1, 2, 3],      // 1: J(0,1)=3/4
            vec![3, 4],         // 2: J(0,2)=2/4
            vec![100, 101],     // 3: J(0,3)=0
        ])
    }

    #[test]
    fn finds_the_true_neighbors() {
        let profiles = store();
        let sim = ExplicitJaccard::new(&profiles);
        let result = BruteForce::default().build(&sim, 2);
        let n0: Vec<u32> = result.graph.neighbors(0).iter().map(|s| s.user).collect();
        assert_eq!(n0, vec![1, 2]);
        assert!((result.graph.neighbors(0)[0].sim - 0.75).abs() < 1e-12);
    }

    #[test]
    fn k_larger_than_population_returns_everyone() {
        let profiles = store();
        let sim = ExplicitJaccard::new(&profiles);
        let result = BruteForce::default().build(&sim, 10);
        assert_eq!(result.graph.neighbors(0).len(), 3);
    }

    #[test]
    fn eval_count_is_exact() {
        let profiles = store();
        let sim = ExplicitJaccard::new(&profiles);
        let result = BruteForce::default().build(&sim, 2);
        assert_eq!(result.stats.similarity_evals, 4 * 3);
        assert_eq!(result.stats.iterations, 1);
    }

    #[test]
    fn parallel_matches_sequential() {
        let profiles = store();
        let sim = ExplicitJaccard::new(&profiles);
        let seq = BruteForce { threads: 1 }.build(&sim, 2);
        let par = BruteForce { threads: 4 }.build(&sim, 2);
        for u in 0..4u32 {
            assert_eq!(seq.graph.neighbors(u), par.graph.neighbors(u));
        }
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let profiles = store();
        let sim = ExplicitJaccard::new(&profiles);
        let _ = BruteForce::default().build(&sim, 0);
    }
}
