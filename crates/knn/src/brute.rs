//! Exact KNN graph construction by exhaustive pairwise comparison.
//!
//! The scan is *tiled* (users are processed in cache-sized blocks so both
//! sides of a comparison stay hot), *parallel* (tile cells are dispatched to
//! worker threads over a work-stealing counter, each thread folding into
//! private top-k partials that are merged deterministically afterwards) and
//! *pruned* (a cheap [`Similarity::similarity_upper_bound`] skips the full
//! evaluation when the pair cannot enter either endpoint's current top-k —
//! DESIGN.md §7). Each unordered pair is considered exactly once, and the
//! output is bit-identical to the naive `O(n²)` double loop.

use crate::graph::{BuildStats, KnnGraph, KnnResult};
use goldfinger_core::parallel::par_fold_dynamic;
use goldfinger_core::similarity::Similarity;
use goldfinger_core::topk::TopK;
use goldfinger_obs::trace;
use goldfinger_obs::{BuildObserver, IterationEvent, NoopObserver, Phase};
use std::time::{Duration, Instant};

/// Default tile edge in users: two tiles of 128 fingerprints at the paper's
/// 1024-bit width are 32 KiB — both sides of a cell fit in L1/L2.
const DEFAULT_TILE: usize = 128;

/// Brute-force builder: considers all `n(n−1)/2` unordered pairs and keeps
/// the top `k` per user. Exact (up to estimator error of the provider), and
/// the reference point of every experiment.
#[derive(Debug, Clone, Copy)]
pub struct BruteForce {
    /// Number of worker threads (0 = available parallelism). When a
    /// `goldfinger_core::pool::Pool` is installed, tile cells are dispatched
    /// to its persistent workers instead of freshly spawned threads; the
    /// graph is bit-identical either way.
    pub threads: usize,
    /// Tile edge in users (0 = default of 128).
    pub tile: usize,
    /// Skip evaluations whose [`Similarity::similarity_upper_bound`] cannot
    /// beat the current top-k thresholds. Never changes the output graph;
    /// skipped pairs are reported in [`BuildStats::pruned_evals`].
    pub prune: bool,
}

impl Default for BruteForce {
    fn default() -> Self {
        BruteForce {
            threads: 1,
            tile: 0,
            prune: true,
        }
    }
}

/// One worker's private fold state: top-k partials over every user plus the
/// evaluation counters and the batched-scoring buffers. No locks are taken
/// on the hot path.
struct ScanState {
    tops: Vec<TopK>,
    evals: u64,
    pruned: u64,
    ids: Vec<u32>,
    sims: Vec<f64>,
}

impl BruteForce {
    /// Builds the exact KNN graph for the given provider.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn build<S: Similarity + ?Sized>(&self, sim: &S, k: usize) -> KnnResult {
        self.build_observed(sim, k, &NoopObserver)
    }

    /// Builds the exact KNN graph, reporting progress to `obs`: one span for
    /// the pair scan ([`Phase::Join`]), one for the deterministic reduction
    /// ([`Phase::Merge`]), and a single [`IterationEvent`] with the final
    /// counters. Observation never changes the output; with the default
    /// [`NoopObserver`] the hooks compile to nothing.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn build_observed<S: Similarity + ?Sized, O: BuildObserver>(
        &self,
        sim: &S,
        k: usize,
        obs: &O,
    ) -> KnnResult {
        assert!(k > 0, "k must be positive");
        let n = sim.n_users();
        let start = Instant::now();
        let tile = if self.tile == 0 {
            DEFAULT_TILE
        } else {
            self.tile
        };
        // Cells (ti, tj) with ti ≤ tj tile the upper triangle of the pair
        // matrix; every unordered pair belongs to exactly one cell, so the
        // cells can be dispatched to threads independently.
        let n_tiles = n.div_ceil(tile);
        let mut cells = Vec::with_capacity(n_tiles * (n_tiles + 1) / 2);
        for ti in 0..n_tiles {
            for tj in ti..n_tiles {
                cells.push((ti, tj));
            }
        }
        let prune = self.prune;
        let scan_start = O::ENABLED.then(Instant::now);
        let scan_trace = trace::span_arg("phase", "join", cells.len() as u64);
        let mut states = par_fold_dynamic(
            cells.len(),
            self.threads,
            1,
            |_| ScanState {
                tops: (0..n).map(|_| TopK::new(k)).collect(),
                evals: 0,
                pruned: 0,
                ids: Vec::new(),
                sims: Vec::new(),
            },
            |state, c| {
                let (ti, tj) = cells[c];
                let (ue, ve) = (((ti + 1) * tile).min(n), ((tj + 1) * tile).min(n));
                for u in (ti * tile)..ue {
                    // The diagonal cell covers only its own upper triangle.
                    let v0 = if ti == tj { u + 1 } else { tj * tile };
                    if !prune {
                        // No prune decisions to interleave, so the whole row
                        // of the cell batches through one `similarity_batch`
                        // call (the gather kernel for fingerprint
                        // providers); offers happen in the same ascending-v
                        // order as the per-pair loop.
                        if v0 >= ve {
                            continue;
                        }
                        let uu = u as u32;
                        state.ids.clear();
                        state.ids.extend(v0 as u32..ve as u32);
                        state.sims.clear();
                        state.sims.resize(state.ids.len(), 0.0);
                        sim.similarity_batch(uu, &state.ids, &mut state.sims);
                        state.evals += state.ids.len() as u64;
                        for (&vv, &s) in state.ids.iter().zip(&state.sims) {
                            state.tops[u].offer(s, vv);
                            state.tops[vv as usize].offer(s, uu);
                        }
                        continue;
                    }
                    for v in v0..ve {
                        let (uu, vv) = (u as u32, v as u32);
                        // Only consult the bound once both sides are full:
                        // an underfull top-k admits everything. The prune
                        // check reads both endpoints' *evolving* thresholds,
                        // so pruned scans stay per-pair — deferring offers
                        // behind a batch would change which pairs get
                        // pruned, breaking the pinned counters.
                        if let (Some(tu), Some(tv)) =
                            (state.tops[u].threshold(), state.tops[v].threshold())
                        {
                            // Strictly below both thresholds ⇒ `offer`
                            // would reject the pair on both sides even
                            // on a similarity tie (ties are admitted
                            // towards lower user ids, hence the strict
                            // comparison).
                            if sim
                                .similarity_upper_bound(uu, vv)
                                .is_some_and(|b| b < tu && b < tv)
                            {
                                state.pruned += 1;
                                continue;
                            }
                        }
                        let s = sim.similarity(uu, vv);
                        state.evals += 1;
                        state.tops[u].offer(s, vv);
                        state.tops[v].offer(s, uu);
                    }
                }
            },
        );
        drop(scan_trace);
        if let Some(t) = scan_start {
            obs.on_span(Phase::Join, t.elapsed());
        }
        // Deterministic reduction: fold every worker's partials into the
        // first state. The kept set of a `TopK` does not depend on insertion
        // order, so the merge result is independent of how cells were
        // distributed across threads.
        let merge_start = O::ENABLED.then(Instant::now);
        let merge_trace = trace::span("phase", "merge");
        let mut merged = states.remove(0);
        for state in states {
            merged.evals += state.evals;
            merged.pruned += state.pruned;
            for (top, part) in merged.tops.iter_mut().zip(&state.tops) {
                for e in part.entries() {
                    top.offer(e.sim, e.user);
                }
            }
        }
        let neighbors: Vec<_> = merged.tops.into_iter().map(TopK::into_sorted).collect();
        drop(merge_trace);
        let wall = start.elapsed();
        if O::ENABLED {
            if let Some(t) = merge_start {
                obs.on_span(Phase::Merge, t.elapsed());
            }
            obs.on_iteration(IterationEvent {
                iteration: 1,
                similarity_evals: merged.evals,
                pruned_evals: merged.pruned,
                updates: 0,
                threshold: 0.0,
                wall,
            });
        }
        KnnResult {
            graph: KnnGraph::from_lists(k, neighbors),
            stats: BuildStats {
                similarity_evals: merged.evals,
                pruned_evals: merged.pruned,
                iterations: 1,
                wall,
                prep_wall: Duration::ZERO,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use goldfinger_core::hash::DynHasher;
    use goldfinger_core::profile::ProfileStore;
    use goldfinger_core::shf::ShfParams;
    use goldfinger_core::similarity::{ExplicitCosine, ExplicitJaccard, ShfCosine, ShfJaccard};

    fn store() -> ProfileStore {
        ProfileStore::from_item_lists(vec![
            vec![1, 2, 3, 4], // 0
            vec![1, 2, 3],    // 1: J(0,1)=3/4
            vec![3, 4],       // 2: J(0,2)=2/4
            vec![100, 101],   // 3: J(0,3)=0
        ])
    }

    /// Profiles with wildly skewed sizes: plenty of pairs where the size
    /// ratio bound actually prunes.
    fn skewed_store(n: usize) -> ProfileStore {
        let mut x = 0x243F6A8885A308D3u64;
        let lists = (0..n)
            .map(|u| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let len = 1 + (x % 64) as usize;
                (0..len)
                    .map(|i| ((u * 7 + i * 13) % 97) as u32)
                    .collect::<std::collections::BTreeSet<_>>()
                    .into_iter()
                    .collect()
            })
            .collect();
        ProfileStore::from_item_lists(lists)
    }

    #[test]
    fn finds_the_true_neighbors() {
        let profiles = store();
        let sim = ExplicitJaccard::new(&profiles);
        let result = BruteForce::default().build(&sim, 2);
        let n0: Vec<u32> = result.graph.neighbors(0).iter().map(|s| s.user).collect();
        assert_eq!(n0, vec![1, 2]);
        assert!((result.graph.neighbors(0)[0].sim - 0.75).abs() < 1e-12);
    }

    #[test]
    fn k_larger_than_population_returns_everyone() {
        let profiles = store();
        let sim = ExplicitJaccard::new(&profiles);
        let result = BruteForce::default().build(&sim, 10);
        assert_eq!(result.graph.neighbors(0).len(), 3);
    }

    #[test]
    fn eval_count_is_exact() {
        let profiles = store();
        let sim = ExplicitJaccard::new(&profiles);
        // Unpruned: every unordered pair is evaluated exactly once.
        let full = BruteForce {
            prune: false,
            ..BruteForce::default()
        }
        .build(&sim, 2);
        assert_eq!(full.stats.similarity_evals, 4 * 3 / 2);
        assert_eq!(full.stats.pruned_evals, 0);
        assert_eq!(full.stats.iterations, 1);
        // Pruned: every unordered pair is either evaluated or pruned.
        let pruned = BruteForce::default().build(&sim, 2);
        assert_eq!(
            pruned.stats.similarity_evals + pruned.stats.pruned_evals,
            4 * 3 / 2
        );
    }

    #[test]
    fn pair_accounting_is_exact_on_larger_population() {
        let profiles = skewed_store(100);
        let sim = ExplicitJaccard::new(&profiles);
        for threads in [1usize, 4] {
            for tile in [0usize, 7, 1000] {
                let r = BruteForce {
                    threads,
                    tile,
                    prune: true,
                }
                .build(&sim, 5);
                assert_eq!(
                    r.stats.similarity_evals + r.stats.pruned_evals,
                    100 * 99 / 2,
                    "threads={threads} tile={tile}"
                );
            }
        }
    }

    #[test]
    fn pruning_actually_fires_on_skewed_profiles() {
        let profiles = skewed_store(100);
        let sim = ExplicitJaccard::new(&profiles);
        let r = BruteForce::default().build(&sim, 3);
        assert!(r.stats.pruned_evals > 0, "stats: {:?}", r.stats);
    }

    #[test]
    fn parallel_matches_sequential() {
        let profiles = store();
        let sim = ExplicitJaccard::new(&profiles);
        let seq = BruteForce {
            threads: 1,
            ..BruteForce::default()
        }
        .build(&sim, 2);
        let par = BruteForce {
            threads: 4,
            ..BruteForce::default()
        }
        .build(&sim, 2);
        for u in 0..4u32 {
            assert_eq!(seq.graph.neighbors(u), par.graph.neighbors(u));
        }
    }

    /// The acceptance bar of the pruned engine: graph-for-graph identical to
    /// the unpruned scan on all four providers, across thread and tile
    /// shapes.
    #[test]
    fn pruned_graph_identical_on_all_providers() {
        let profiles = skewed_store(80);
        let shf = ShfParams::new(256, DynHasher::default()).fingerprint_store(&profiles);
        let providers: Vec<Box<dyn Similarity + '_>> = vec![
            Box::new(ExplicitJaccard::new(&profiles)),
            Box::new(ExplicitCosine::new(&profiles)),
            Box::new(ShfJaccard::new(&shf)),
            Box::new(ShfCosine::new(&shf)),
        ];
        for (p, sim) in providers.iter().enumerate() {
            let baseline = BruteForce {
                threads: 1,
                tile: 0,
                prune: false,
            }
            .build(sim.as_ref(), 4);
            for threads in [1usize, 4] {
                for tile in [0usize, 13] {
                    let pruned = BruteForce {
                        threads,
                        tile,
                        prune: true,
                    }
                    .build(sim.as_ref(), 4);
                    for u in 0..80u32 {
                        assert_eq!(
                            baseline.graph.neighbors(u),
                            pruned.graph.neighbors(u),
                            "provider={p} threads={threads} tile={tile} u={u}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let profiles = store();
        let sim = ExplicitJaccard::new(&profiles);
        let _ = BruteForce::default().build(&sim, 0);
    }
}
