//! On-disk op logs for the serving layer: a line-oriented text format so
//! replay drivers can stream a recorded traffic log from a file instead
//! of pre-materializing the op vector.
//!
//! Grammar (one op per line; blank lines and `#` comments are skipped):
//!
//! ```text
//! L <user>                    top-k lookup
//! U <user> <item>[,<item>…]   profile update (≥ 1 item)
//! ```
//!
//! [`OpLogReader`] yields [`Op`]s in file order and plugs straight into
//! [`crate::serve::replay_stream`]; [`write_op_log`] accepts any op
//! iterator (e.g. [`crate::serve::synth_op_stream`]), so a log can be
//! recorded without ever holding it in memory either.

use crate::serve::Op;
use std::io::{BufRead, BufReader, Read, Write};

/// Writes `ops` to `w` in the op-log text format; returns the number of
/// ops written.
pub fn write_op_log(ops: impl IntoIterator<Item = Op>, w: &mut impl Write) -> std::io::Result<u64> {
    let mut w = std::io::BufWriter::new(w);
    let mut n = 0u64;
    for op in ops {
        match op {
            Op::Lookup { user } => writeln!(w, "L {user}")?,
            Op::Update { user, items } => {
                write!(w, "U {user} ")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(w, ",")?;
                    }
                    write!(w, "{item}")?;
                }
                writeln!(w)?;
            }
        }
        n += 1;
    }
    w.flush()?;
    Ok(n)
}

/// Streams [`Op`]s out of an op-log file one line at a time.
pub struct OpLogReader<R> {
    lines: std::io::Lines<BufReader<R>>,
    lineno: usize,
}

impl<R: Read> OpLogReader<R> {
    /// Wraps a reader over op-log text.
    pub fn new(reader: R) -> Self {
        OpLogReader {
            lines: BufReader::new(reader).lines(),
            lineno: 0,
        }
    }
}

fn bad(lineno: usize, message: impl Into<String>) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("op log line {lineno}: {}", message.into()),
    )
}

fn parse_op(line: &str, lineno: usize) -> std::io::Result<Option<Op>> {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return Ok(None);
    }
    let mut fields = trimmed.split_whitespace();
    let kind = fields.next().unwrap_or_default();
    let user: u32 = fields
        .next()
        .ok_or_else(|| bad(lineno, "missing user field"))?
        .parse()
        .map_err(|_| bad(lineno, "invalid user id"))?;
    match kind {
        "L" => {
            if fields.next().is_some() {
                return Err(bad(lineno, "trailing fields after lookup"));
            }
            Ok(Some(Op::Lookup { user }))
        }
        "U" => {
            let raw = fields
                .next()
                .ok_or_else(|| bad(lineno, "update without items"))?;
            let items: Vec<u32> = raw
                .split(',')
                .map(|s| s.parse().map_err(|_| bad(lineno, "invalid item id")))
                .collect::<Result<_, _>>()?;
            if items.is_empty() {
                return Err(bad(lineno, "update without items"));
            }
            Ok(Some(Op::Update { user, items }))
        }
        other => Err(bad(lineno, format!("unknown op kind {other:?}"))),
    }
}

impl<R: Read> Iterator for OpLogReader<R> {
    type Item = std::io::Result<Op>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let line = match self.lines.next()? {
                Ok(line) => line,
                Err(e) => return Some(Err(e)),
            };
            self.lineno += 1;
            match parse_op(&line, self.lineno) {
                Ok(Some(op)) => return Some(Ok(op)),
                Ok(None) => continue,
                Err(e) => return Some(Err(e)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::synth_ops;

    #[test]
    fn op_log_round_trips_a_synthetic_log() {
        let ops = synth_ops(50, 4000, 500, 40, 7);
        let mut buf = Vec::new();
        let n = write_op_log(ops.iter().cloned(), &mut buf).unwrap();
        assert_eq!(n, 500);
        let back: Vec<Op> = OpLogReader::new(buf.as_slice())
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(back, ops);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "# recorded log\n\nL 3\nU 7 10,11\n";
        let ops: Vec<Op> = OpLogReader::new(text.as_bytes())
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(
            ops,
            vec![
                Op::Lookup { user: 3 },
                Op::Update {
                    user: 7,
                    items: vec![10, 11]
                }
            ]
        );
    }

    #[test]
    fn malformed_lines_report_their_line_number() {
        for (text, needle) in [
            ("L x\n", "line 1"),
            ("L 1 extra\n", "trailing"),
            ("U 1\n", "without items"),
            ("U 1 2,bad\n", "invalid item"),
            ("# ok\nQ 1\n", "line 2"),
        ] {
            let err = OpLogReader::new(text.as_bytes())
                .collect::<Result<Vec<_>, _>>()
                .unwrap_err();
            assert!(err.to_string().contains(needle), "{text:?} → {err}");
        }
    }
}
