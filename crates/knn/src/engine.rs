//! The shared iterative-refinement engine behind NNDescent and Hyrec.
//!
//! Both algorithms follow the same skeleton — seed a random graph, then
//! repeat *generate candidates → join candidate pairs → test convergence*
//! until fewer than `δ·k·n` neighbour-list updates happen in an iteration —
//! and previously each carried its own copy of that scaffolding, twice
//! (serial and parallel). [`RefineEngine`] owns the skeleton exactly once:
//! parameter asserts, the seeded [`random_lists`] init and its iteration-0
//! event, per-iteration [`IterationEvent`]s with the `δ·k·n` threshold,
//! phase spans, the `NeighborList → KnnGraph` finalize and the
//! [`BuildStats`] assembly. What varies per algorithm is expressed as a
//! [`JoinStrategy`]: how candidates are planned from the current lists, and
//! which pairs are joined for a given user.
//!
//! Determinism contract: with `threads <= 1` the engine performs the same
//! RNG draws and the same joins in the same order as the hand-rolled loops
//! it replaced, so fixed-seed builds are bit-identical (pinned by
//! `tests/golden_seed.rs`). With `threads > 1` candidate planning stays
//! sequential and seeded; only the join phase runs across threads with
//! per-node locks, so update interleaving — and thus tie outcomes — is
//! scheduler-dependent, as before.

use crate::graph::{BuildStats, KnnGraph, KnnResult};
use crate::neighborlist::{random_lists, NeighborList};
use goldfinger_core::parallel::par_for_each_range;
use goldfinger_core::similarity::Similarity;
use goldfinger_obs::trace;
use goldfinger_obs::{BuildObserver, IterationEvent, Phase};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Consumes candidate pairs during the join phase: evaluates the pair once
/// and offers the similarity to both endpoints' lists, counting evaluations
/// and list updates.
pub trait Joiner {
    /// Evaluates `similarity(a, b)` once and offers it to both `a`'s and
    /// `b`'s neighbour lists.
    fn join(&mut self, a: u32, b: u32);

    /// Joins `a` against every candidate in `bs`, in order.
    ///
    /// Semantically identical to `for &b in bs { self.join(a, b) }` — same
    /// pairs, same order, same values, same counters — which is also the
    /// default implementation. The engine joiners override it to score the
    /// whole candidate list through [`Similarity::similarity_batch`] (the
    /// gather kernels for fingerprint providers) before applying the list
    /// inserts in the original order.
    fn join_batch(&mut self, a: u32, bs: &[u32]) {
        for &b in bs {
            self.join(a, b);
        }
    }
}

/// The serial joiner: exclusive access to the lists, plain counters, and a
/// reusable similarity buffer for batched joins.
pub struct SerialJoiner<'a, S: ?Sized> {
    lists: &'a mut [NeighborList],
    sim: &'a S,
    evals: &'a mut u64,
    updates: &'a mut u64,
    batch: Vec<f64>,
}

impl<S: Similarity + ?Sized> Joiner for SerialJoiner<'_, S> {
    fn join(&mut self, a: u32, b: u32) {
        *self.evals += 1;
        let s = self.sim.similarity(a, b);
        if self.lists[a as usize].insert(b, s) {
            *self.updates += 1;
        }
        if self.lists[b as usize].insert(a, s) {
            *self.updates += 1;
        }
    }

    fn join_batch(&mut self, a: u32, bs: &[u32]) {
        if bs.len() < 2 {
            // Nothing to amortise; skip the buffer bookkeeping.
            for &b in bs {
                self.join(a, b);
            }
            return;
        }
        self.batch.clear();
        self.batch.resize(bs.len(), 0.0);
        self.sim.similarity_batch(a, bs, &mut self.batch);
        *self.evals += bs.len() as u64;
        for (&b, &s) in bs.iter().zip(&self.batch) {
            if self.lists[a as usize].insert(b, s) {
                *self.updates += 1;
            }
            if self.lists[b as usize].insert(a, s) {
                *self.updates += 1;
            }
        }
    }
}

/// The parallel joiner: per-node locks (one held at a time — no nesting, no
/// deadlock), atomic counters, and a per-worker similarity buffer.
pub struct ParJoiner<'a, S: ?Sized> {
    locks: &'a [Mutex<NeighborList>],
    sim: &'a S,
    evals: &'a AtomicU64,
    updates: &'a AtomicU64,
    batch: Vec<f64>,
}

impl<S: Similarity + ?Sized> Joiner for ParJoiner<'_, S> {
    fn join(&mut self, a: u32, b: u32) {
        self.evals.fetch_add(1, Ordering::Relaxed);
        let s = self.sim.similarity(a, b);
        let mut changed = 0u64;
        if self.locks[a as usize].lock().unwrap().insert(b, s) {
            changed += 1;
        }
        if self.locks[b as usize].lock().unwrap().insert(a, s) {
            changed += 1;
        }
        if changed > 0 {
            self.updates.fetch_add(changed, Ordering::Relaxed);
        }
    }

    fn join_batch(&mut self, a: u32, bs: &[u32]) {
        if bs.len() < 2 {
            for &b in bs {
                self.join(a, b);
            }
            return;
        }
        self.batch.clear();
        self.batch.resize(bs.len(), 0.0);
        self.sim.similarity_batch(a, bs, &mut self.batch);
        self.evals.fetch_add(bs.len() as u64, Ordering::Relaxed);
        let mut changed = 0u64;
        for (&b, &s) in bs.iter().zip(&self.batch) {
            if self.locks[a as usize].lock().unwrap().insert(b, s) {
                changed += 1;
            }
            if self.locks[b as usize].lock().unwrap().insert(a, s) {
                changed += 1;
            }
        }
        if changed > 0 {
            self.updates.fetch_add(changed, Ordering::Relaxed);
        }
    }
}

/// Uniform access to the neighbour lists during candidate planning, hiding
/// whether the engine runs serial (plain slice) or parallel (per-node
/// locks). Planning is always sequential, so locking per access is cheap.
pub enum ListsView<'a> {
    /// Serial engine: exclusive slice.
    Serial(&'a mut [NeighborList]),
    /// Parallel engine: the lists behind their per-node locks.
    Shared(&'a [Mutex<NeighborList>]),
}

impl ListsView<'_> {
    /// Number of users.
    pub fn len(&self) -> usize {
        match self {
            ListsView::Serial(lists) => lists.len(),
            ListsView::Shared(locks) => locks.len(),
        }
    }

    /// True for an empty population.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Runs `f` with mutable access to user `u`'s list.
    pub fn with<R>(&mut self, u: usize, f: impl FnOnce(&mut NeighborList) -> R) -> R {
        match self {
            ListsView::Serial(lists) => f(&mut lists[u]),
            ListsView::Shared(locks) => f(&mut locks[u].lock().unwrap()),
        }
    }
}

/// An algorithm's contribution to one refinement iteration: plan candidates
/// from the current graph, then join pairs per user. Implemented by
/// [`NNDescent`](crate::nndescent::NNDescent) and
/// [`Hyrec`](crate::hyrec::Hyrec); the engine supplies everything else.
pub trait JoinStrategy: Sync {
    /// Per-iteration candidate plan, computed sequentially and then read by
    /// every join worker.
    type Plan: Sync;
    /// Per-worker mutable scratch (e.g. a visited stamp); created once per
    /// build for the serial engine and per worker for the parallel one.
    type Scratch;

    /// Validates strategy-specific parameters; panics on invalid ones.
    fn validate(&self) {}

    /// Plans this iteration's candidates from the current lists. May mutate
    /// the lists (NNDescent clears `is_new` flags) and draw from `rng` —
    /// this is the only place refinement consumes randomness, which is what
    /// keeps parallel planning identical to serial.
    fn candidates(&self, k: usize, lists: &mut ListsView<'_>, rng: &mut StdRng) -> Self::Plan;

    /// Creates the scratch for a worker over a population of `n` users.
    fn scratch(&self, n: usize) -> Self::Scratch;

    /// Feeds user `u`'s candidate pairs to the joiner.
    fn join_user<J: Joiner>(
        &self,
        plan: &Self::Plan,
        u: usize,
        scratch: &mut Self::Scratch,
        joiner: &mut J,
    );
}

/// The refinement-loop scaffolding shared by greedy KNN builders.
///
/// Owns everything around the per-algorithm [`JoinStrategy`]: the seeded
/// random-graph init, the iterate/converge/finalize loop, observer events
/// and spans, and the final [`BuildStats`].
#[derive(Debug, Clone, Copy)]
pub struct RefineEngine {
    /// Termination threshold: stop when an iteration performs fewer than
    /// `delta · k · n` list updates.
    pub delta: f64,
    /// Hard cap on refinement iterations.
    pub max_iterations: u32,
    /// RNG seed for the initial random graph and candidate sampling.
    pub seed: u64,
    /// Worker threads for the join phase (1 = sequential, deterministic).
    pub threads: usize,
}

impl RefineEngine {
    /// Runs the full refinement: init, iterate until convergence or the
    /// iteration cap, finalize.
    ///
    /// # Panics
    /// Panics if `k == 0`, `delta` is negative, or
    /// [`JoinStrategy::validate`] rejects the strategy's parameters.
    pub fn run<S, St, O>(&self, sim: &S, k: usize, strategy: &St, obs: &O) -> KnnResult
    where
        S: Similarity + ?Sized,
        St: JoinStrategy,
        O: BuildObserver,
    {
        assert!(k > 0, "k must be positive");
        assert!(self.delta >= 0.0, "delta must be non-negative");
        strategy.validate();
        if self.threads > 1 {
            self.run_parallel(sim, k, strategy, obs)
        } else {
            self.run_serial(sim, k, strategy, obs)
        }
    }

    fn run_serial<S, St, O>(&self, sim: &S, k: usize, strategy: &St, obs: &O) -> KnnResult
    where
        S: Similarity + ?Sized,
        St: JoinStrategy,
        O: BuildObserver,
    {
        let n = sim.n_users();
        let start = Instant::now();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut evals = 0u64;
        let mut lists = random_lists(sim, k, &mut rng, &mut evals);
        if O::ENABLED {
            obs.on_iteration(IterationEvent {
                iteration: 0,
                similarity_evals: evals,
                pruned_evals: 0,
                updates: 0,
                threshold: 0.0,
                wall: start.elapsed(),
            });
        }
        let threshold = self.delta * k as f64 * n as f64;
        let mut scratch = strategy.scratch(n);
        let mut iterations = 0u32;

        while iterations < self.max_iterations {
            iterations += 1;
            let _iter = trace::span_arg("engine", "iteration", iterations as u64);
            let iter_start = O::ENABLED.then(Instant::now);
            let evals_before = evals;

            let plan = {
                let _t = trace::span("phase", "candidate_generation");
                strategy.candidates(k, &mut ListsView::Serial(&mut lists), &mut rng)
            };
            if let Some(t) = iter_start {
                obs.on_span(Phase::CandidateGeneration, t.elapsed());
            }

            let join_start = O::ENABLED.then(Instant::now);
            let mut updates = 0u64;
            {
                let _t = trace::span("phase", "join");
                let mut joiner = SerialJoiner {
                    lists: &mut lists,
                    sim,
                    evals: &mut evals,
                    updates: &mut updates,
                    batch: Vec::new(),
                };
                for u in 0..n {
                    strategy.join_user(&plan, u, &mut scratch, &mut joiner);
                }
            }

            if O::ENABLED {
                if let Some(t) = join_start {
                    obs.on_span(Phase::Join, t.elapsed());
                }
                obs.on_iteration(IterationEvent {
                    iteration: iterations,
                    similarity_evals: evals - evals_before,
                    pruned_evals: 0,
                    updates,
                    threshold,
                    wall: iter_start.map_or(Duration::ZERO, |t| t.elapsed()),
                });
            }
            if (updates as f64) < threshold {
                break;
            }
        }

        let merge_start = O::ENABLED.then(Instant::now);
        let merge_trace = trace::span("phase", "merge");
        let neighbors = lists.iter().map(NeighborList::to_sorted).collect();
        drop(merge_trace);
        if let Some(t) = merge_start {
            obs.on_span(Phase::Merge, t.elapsed());
        }
        KnnResult {
            graph: KnnGraph::from_lists(k, neighbors),
            stats: BuildStats {
                similarity_evals: evals,
                pruned_evals: 0,
                iterations,
                wall: start.elapsed(),
                prep_wall: Duration::ZERO,
            },
        }
    }

    fn run_parallel<S, St, O>(&self, sim: &S, k: usize, strategy: &St, obs: &O) -> KnnResult
    where
        S: Similarity + ?Sized,
        St: JoinStrategy,
        O: BuildObserver,
    {
        let n = sim.n_users();
        let start = Instant::now();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut init_evals = 0u64;
        let lists = random_lists(sim, k, &mut rng, &mut init_evals);
        let locks: Vec<Mutex<NeighborList>> = lists.into_iter().map(Mutex::new).collect();
        let evals = AtomicU64::new(init_evals);
        if O::ENABLED {
            obs.on_iteration(IterationEvent {
                iteration: 0,
                similarity_evals: init_evals,
                pruned_evals: 0,
                updates: 0,
                threshold: 0.0,
                wall: start.elapsed(),
            });
        }
        let threshold = self.delta * k as f64 * n as f64;
        let mut iterations = 0u32;

        while iterations < self.max_iterations {
            iterations += 1;
            let _iter = trace::span_arg("engine", "iteration", iterations as u64);
            let iter_start = O::ENABLED.then(Instant::now);
            let evals_before = evals.load(Ordering::Relaxed);

            // Planning stays sequential and seeded; only the joins fan out.
            let plan = {
                let _t = trace::span("phase", "candidate_generation");
                strategy.candidates(k, &mut ListsView::Shared(&locks), &mut rng)
            };
            if let Some(t) = iter_start {
                obs.on_span(Phase::CandidateGeneration, t.elapsed());
            }

            let join_start = O::ENABLED.then(Instant::now);
            let join_trace = trace::span("phase", "join");
            let updates = AtomicU64::new(0);
            par_for_each_range(n, self.threads, |_, lo, hi| {
                let mut scratch = strategy.scratch(n);
                let mut joiner = ParJoiner {
                    locks: &locks,
                    sim,
                    evals: &evals,
                    updates: &updates,
                    batch: Vec::new(),
                };
                for u in lo..hi {
                    strategy.join_user(&plan, u, &mut scratch, &mut joiner);
                }
            });
            drop(join_trace);

            if O::ENABLED {
                if let Some(t) = join_start {
                    obs.on_span(Phase::Join, t.elapsed());
                }
                obs.on_iteration(IterationEvent {
                    iteration: iterations,
                    similarity_evals: evals.load(Ordering::Relaxed) - evals_before,
                    pruned_evals: 0,
                    updates: updates.load(Ordering::Relaxed),
                    threshold,
                    wall: iter_start.map_or(Duration::ZERO, |t| t.elapsed()),
                });
            }
            if (updates.load(Ordering::Relaxed) as f64) < threshold {
                break;
            }
        }

        let merge_start = O::ENABLED.then(Instant::now);
        let merge_trace = trace::span("phase", "merge");
        let neighbors = locks
            .iter()
            .map(|l| l.lock().unwrap().to_sorted())
            .collect();
        drop(merge_trace);
        if let Some(t) = merge_start {
            obs.on_span(Phase::Merge, t.elapsed());
        }
        KnnResult {
            graph: KnnGraph::from_lists(k, neighbors),
            stats: BuildStats {
                similarity_evals: evals.load(Ordering::Relaxed),
                pruned_evals: 0,
                iterations,
                wall: start.elapsed(),
                prep_wall: Duration::ZERO,
            },
        }
    }
}
