//! The `KnnBuilder` abstraction: one interface over every construction
//! algorithm in this crate.
//!
//! Two layers:
//!
//! - [`KnnBuilder`] is the statically-dispatched trait the six builders
//!   implement. It is generic over the [`Similarity`] provider and the
//!   [`BuildObserver`] — exactly like the builders' inherent methods, which
//!   remain in place (concrete call sites keep their signatures and their
//!   monomorphised, zero-overhead observer paths).
//! - [`ErasedBuilder`] is the dyn-safe form, obtained for free from any
//!   `KnnBuilder` via a blanket impl. The registry
//!   ([`crate::builders`]) hands out `Box<dyn ErasedBuilder>` so harnesses
//!   can enumerate and run algorithms without naming their types; similarity
//!   and observer are passed behind `dyn` references there.
//!
//! Inputs are bundled in [`BuildInput`] because the builders disagree on
//! what they need: the greedy refiners only consume a [`Similarity`], while
//! LSH and KIFF additionally read the explicit [`ProfileStore`] (bucketing
//! and the inverted index are GoldFinger-immune). The
//! [`KnnBuilder::needs_profiles`] capability flag tells callers which case
//! they are in.

use crate::brute::BruteForce;
use crate::cluster::Cluster;
use crate::graph::KnnResult;
use crate::hyrec::Hyrec;
use crate::kiff::Kiff;
use crate::lsh::Lsh;
use crate::nndescent::NNDescent;
use goldfinger_core::profile::ProfileStore;
use goldfinger_core::similarity::Similarity;
use goldfinger_obs::{BuildObserver, DynObserver, NoopObserver, ObserverHooks};

/// The inputs a builder may consume: the similarity provider, plus the
/// explicit profiles for algorithms whose candidate generation reads them.
#[derive(Debug)]
pub struct BuildInput<'a, S: ?Sized> {
    /// Scores candidate pairs (explicit provider = native run, SHF provider
    /// = GoldFinger run).
    pub sim: &'a S,
    /// Raw item sets, required by builders with
    /// [`KnnBuilder::needs_profiles`]` == true` (LSH bucketing, KIFF's
    /// inverted index).
    pub profiles: Option<&'a ProfileStore>,
}

impl<'a, S: ?Sized> BuildInput<'a, S> {
    /// Input carrying only a similarity provider.
    pub fn new(sim: &'a S) -> Self {
        BuildInput {
            sim,
            profiles: None,
        }
    }

    /// Input carrying the provider and the explicit profiles.
    pub fn with_profiles(sim: &'a S, profiles: &'a ProfileStore) -> Self {
        BuildInput {
            sim,
            profiles: Some(profiles),
        }
    }

    /// The profile store.
    ///
    /// # Panics
    /// Panics when the input carries none — callers must honour
    /// [`KnnBuilder::needs_profiles`].
    pub fn profiles(&self) -> &'a ProfileStore {
        self.profiles
            .expect("this builder needs explicit profiles (see KnnBuilder::needs_profiles)")
    }
}

impl<S: ?Sized> Clone for BuildInput<'_, S> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<S: ?Sized> Copy for BuildInput<'_, S> {}

/// A KNN graph construction algorithm, generic over provider and observer.
///
/// The determinism contract mirrors the golden-seed suite: when
/// [`deterministic`](KnnBuilder::deterministic) reports `true`, repeated
/// builds over the same input produce bit-identical graphs and identical
/// `BuildStats` counters, and plugging in any observer never changes the
/// output.
pub trait KnnBuilder: Sync {
    /// Display name, as printed in the paper's tables.
    fn name(&self) -> &'static str;

    /// Whether this configuration yields bit-identical output on repeated
    /// runs. Brute Force, LSH, KIFF and Cluster are deterministic for any
    /// thread count; the greedy refiners only with `threads <= 1` (parallel
    /// joins make tie outcomes scheduler-dependent).
    fn deterministic(&self) -> bool;

    /// Whether [`BuildInput::profiles`] must be present.
    fn needs_profiles(&self) -> bool {
        false
    }

    /// Builds the graph, reporting iteration events and phase spans to
    /// `obs`.
    fn build_observed<S: Similarity + ?Sized, O: BuildObserver>(
        &self,
        input: BuildInput<'_, S>,
        k: usize,
        obs: &O,
    ) -> KnnResult;

    /// Builds the graph unobserved.
    fn build<S: Similarity + ?Sized>(&self, input: BuildInput<'_, S>, k: usize) -> KnnResult {
        self.build_observed(input, k, &NoopObserver)
    }
}

/// Dyn-safe form of [`KnnBuilder`], implemented for every builder by a
/// blanket impl. This is what the registry boxes.
pub trait ErasedBuilder: Sync {
    /// See [`KnnBuilder::name`].
    fn name(&self) -> &'static str;

    /// See [`KnnBuilder::deterministic`].
    fn deterministic(&self) -> bool;

    /// See [`KnnBuilder::needs_profiles`].
    fn needs_profiles(&self) -> bool;

    /// Builds the graph with provider and observer behind `dyn` references.
    ///
    /// A disabled observer ([`ObserverHooks::enabled`]` == false`) is
    /// replaced by the static [`NoopObserver`], restoring the builders'
    /// bookkeeping-free path.
    fn build_erased<'a>(
        &self,
        input: BuildInput<'a, dyn Similarity + 'a>,
        k: usize,
        obs: &dyn ObserverHooks,
    ) -> KnnResult;
}

impl<B: KnnBuilder> ErasedBuilder for B {
    fn name(&self) -> &'static str {
        KnnBuilder::name(self)
    }

    fn deterministic(&self) -> bool {
        KnnBuilder::deterministic(self)
    }

    fn needs_profiles(&self) -> bool {
        KnnBuilder::needs_profiles(self)
    }

    fn build_erased<'a>(
        &self,
        input: BuildInput<'a, dyn Similarity + 'a>,
        k: usize,
        obs: &dyn ObserverHooks,
    ) -> KnnResult {
        if obs.enabled() {
            KnnBuilder::build_observed(self, input, k, &DynObserver(obs))
        } else {
            KnnBuilder::build_observed(self, input, k, &NoopObserver)
        }
    }
}

// The trait impls delegate to the builders' inherent entry points, which
// keep their historical signatures (inherent methods win at concrete call
// sites, so existing callers are untouched).

impl KnnBuilder for BruteForce {
    fn name(&self) -> &'static str {
        "Brute Force"
    }

    // Tile cells fold into private partials merged deterministically, so
    // any thread count is bit-identical.
    fn deterministic(&self) -> bool {
        true
    }

    fn build_observed<S: Similarity + ?Sized, O: BuildObserver>(
        &self,
        input: BuildInput<'_, S>,
        k: usize,
        obs: &O,
    ) -> KnnResult {
        BruteForce::build_observed(self, input.sim, k, obs)
    }
}

impl KnnBuilder for Hyrec {
    fn name(&self) -> &'static str {
        "Hyrec"
    }

    fn deterministic(&self) -> bool {
        self.threads <= 1
    }

    fn build_observed<S: Similarity + ?Sized, O: BuildObserver>(
        &self,
        input: BuildInput<'_, S>,
        k: usize,
        obs: &O,
    ) -> KnnResult {
        Hyrec::build_observed(self, input.sim, k, obs)
    }
}

impl KnnBuilder for NNDescent {
    fn name(&self) -> &'static str {
        "NNDescent"
    }

    fn deterministic(&self) -> bool {
        self.threads <= 1
    }

    fn build_observed<S: Similarity + ?Sized, O: BuildObserver>(
        &self,
        input: BuildInput<'_, S>,
        k: usize,
        obs: &O,
    ) -> KnnResult {
        NNDescent::build_observed(self, input.sim, k, obs)
    }
}

impl KnnBuilder for Lsh {
    fn name(&self) -> &'static str {
        "LSH"
    }

    // Every per-user scan is self-contained, so any thread count is
    // bit-identical.
    fn deterministic(&self) -> bool {
        true
    }

    fn needs_profiles(&self) -> bool {
        true
    }

    fn build_observed<S: Similarity + ?Sized, O: BuildObserver>(
        &self,
        input: BuildInput<'_, S>,
        k: usize,
        obs: &O,
    ) -> KnnResult {
        Lsh::build_observed(self, input.profiles(), input.sim, k, obs)
    }
}

impl KnnBuilder for Cluster {
    fn name(&self) -> &'static str {
        "Cluster"
    }

    // Clusters are scanned as atomic units with cluster-local prune state
    // and merged deterministically, so any thread count is bit-identical —
    // counters included.
    fn deterministic(&self) -> bool {
        true
    }

    fn needs_profiles(&self) -> bool {
        true
    }

    fn build_observed<S: Similarity + ?Sized, O: BuildObserver>(
        &self,
        input: BuildInput<'_, S>,
        k: usize,
        obs: &O,
    ) -> KnnResult {
        Cluster::build_observed(self, input.profiles(), input.sim, k, obs)
    }
}

impl KnnBuilder for Kiff {
    fn name(&self) -> &'static str {
        "KIFF"
    }

    fn deterministic(&self) -> bool {
        true
    }

    fn needs_profiles(&self) -> bool {
        true
    }

    fn build_observed<S: Similarity + ?Sized, O: BuildObserver>(
        &self,
        input: BuildInput<'_, S>,
        k: usize,
        obs: &O,
    ) -> KnnResult {
        Kiff::build_observed(self, input.profiles(), input.sim, k, obs)
    }
}
