//! Sharded out-of-core KNN construction: LSH routing, spill-to-disk
//! state, bounded peak RSS.
//!
//! The in-RAM builders assume three things fit in memory at once: the
//! fingerprint arena, the LSH bucket tables, and the finished graph. This
//! module drops all three assumptions while keeping the *output* pinned:
//! with spilling disabled and one shard, [`build`] is **bit-identical**
//! to [`Lsh::build`](crate::lsh::Lsh::build) over the GoldFinger
//! provider, and every knob that changes that (bucket caps, compact
//! segments) is off by default.
//!
//! Pipeline, in four phases:
//!
//! 1. **Fingerprint** — stream profiles once from a
//!    [`ProfileSource`], OR-ing fingerprints into an [`ShfStore`] whose
//!    arena lives on the spill backend, and recording each user's
//!    per-table MinHash key ([`crate::lsh::bucket_key`]) in a spilled
//!    key arena. Peak memory: one profile + one ingest batch.
//! 2. **Index** — per table, sort the `(key, user)` pairs into two
//!    spilled arrays; a bucket is a run of equal keys, found by binary
//!    search. Users enter in ascending id order and the sort is stable,
//!    so in-bucket order matches the `HashMap<_, Vec<u32>>` insertion
//!    order of the in-RAM LSH — the determinism contract.
//! 3. **Scan** — users are partitioned into contiguous shards; each
//!    shard scans its users' buckets across all tables (visit-stamp
//!    deduplicated, exactly the LSH candidate sequence), scores
//!    candidates through the batched gather kernels, and streams its
//!    top-k lists into an on-disk `GFCS` segment
//!    ([`crate::csr::SegmentWriter`]). After a shard, the arena and key
//!    pages it touched are advised cold, bounding resident growth to
//!    roughly one shard's working set.
//! 4. **Stitch** — segments are replayed in shard order into a
//!    [`CsrBuilder`] ([`build`]) or streamed straight into a `GFG1`
//!    graph file ([`build_to_disk`]), which never materializes the full
//!    edge set in RAM.

use crate::csr::{read_segment, SegmentWriter};
use crate::graph::{CsrBuilder, KnnGraph};
use crate::lsh::{bucket_key, table_seed};
use goldfinger_core::arena::ArenaBackend;
use goldfinger_core::hash::ItemHasher;
use goldfinger_core::profile::ProfileSource;
use goldfinger_core::shf::{ShfParams, ShfStore, ShfStreamWriter};
use goldfinger_core::topk::TopK;
use goldfinger_core::visit::VisitStamp;
use goldfinger_obs::trace;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Ingest batch size of the fingerprint phase, in (user, item)
/// associations: large enough to amortize the parallel hash dispatch,
/// small enough to stay cache-resident.
const INGEST_BATCH: usize = 1 << 16;

/// Configuration of an out-of-core build.
#[derive(Debug, Clone)]
pub struct OocConfig {
    /// Neighbourhood size.
    pub k: usize,
    /// Number of LSH tables (MinHash permutations).
    pub tables: usize,
    /// LSH permutation seed (same derivation as [`crate::lsh::Lsh`]).
    pub seed: u64,
    /// Shard count; `0` derives it from `mem_budget` (see
    /// [`OocConfig::effective_shards`]).
    pub shards: usize,
    /// Target peak RSS in bytes (`0` = unbounded). Drives shard
    /// auto-derivation; the CI gate checks the measured peak against it.
    pub mem_budget: u64,
    /// Directory for spilled state (arena, key arrays, graph segments).
    pub spill_dir: PathBuf,
    /// Spill the fingerprint arena and key/index arrays to mapped files
    /// (Linux only). With `false` they stay on the heap — the pipeline
    /// still shards and still writes graph segments to disk.
    pub spill: bool,
    /// Skip buckets larger than this many users during the scan
    /// (`0` = no cap). A cap bounds worst-case scan cost on
    /// popularity-skewed data but departs from plain LSH output.
    pub max_bucket: usize,
    /// Store segment similarities as `f32` instead of exact `f64` —
    /// halves segment bytes, breaks bit-identity with the in-RAM build.
    pub compact_segments: bool,
}

impl OocConfig {
    /// A config with the in-RAM-equivalent defaults: no bucket cap,
    /// exact segments, spilling on, shards derived from the budget.
    pub fn new(k: usize, tables: usize, seed: u64, spill_dir: impl Into<PathBuf>) -> Self {
        OocConfig {
            k,
            tables,
            seed,
            shards: 0,
            mem_budget: 0,
            spill_dir: spill_dir.into(),
            spill: true,
            max_bucket: 0,
            compact_segments: false,
        }
    }

    /// The shard count the build will actually run with: the configured
    /// one, or — when `shards == 0` — derived so one shard's share of the
    /// spilled state (arena + key index) is about a quarter of
    /// `mem_budget`, leaving the rest for the stamp array, the scan
    /// buffers, and the segment writer. Unbounded budget ⇒ one shard.
    pub fn effective_shards(&self, n_users: usize, arena_bytes: u64) -> usize {
        if self.shards > 0 {
            return self.shards.min(n_users.max(1));
        }
        if self.mem_budget == 0 {
            return 1;
        }
        let key_bytes = (self.tables as u64) * (n_users as u64) * 8 * 3; // keys + sorted pairs
        let data = arena_bytes + key_bytes;
        let shards = (4 * data).div_ceil(self.mem_budget).max(1);
        (shards as usize).min(n_users.max(1))
    }
}

/// Counters and timings of one out-of-core build.
#[derive(Debug, Clone, Default)]
pub struct OocStats {
    /// Population size.
    pub n_users: usize,
    /// Shards the scan ran with.
    pub shards: usize,
    /// Similarity evaluations across all shards (same counting rule as
    /// the in-RAM LSH: one per deduplicated candidate).
    pub similarity_evals: u64,
    /// (user, item) associations streamed during fingerprinting.
    pub associations: u64,
    /// Fingerprint-arena size in bytes (padded rows).
    pub arena_bytes: u64,
    /// Bytes written to spill files (arena + keys + index + segments).
    pub spilled_bytes: u64,
    /// Arena backend actually used (`"heap"` / `"mmap"`).
    pub backend: &'static str,
    /// Wall time of the fingerprint+key streaming phase.
    pub fingerprint_wall: Duration,
    /// Wall time of the bucket-index sort phase.
    pub index_wall: Duration,
    /// Wall time of the candidate scan across all shards.
    pub scan_wall: Duration,
    /// Wall time of segment stitching.
    pub stitch_wall: Duration,
    /// Per-shard scan wall times (length `shards`).
    pub shard_walls: Vec<Duration>,
    /// End-to-end wall time.
    pub wall: Duration,
}

/// The spilled state shared by the scan phase.
struct OocState {
    store: ShfStore,
    /// Per-table MinHash keys, `keys[t * n + u]` (undefined where
    /// `cardinality(u) == 0` — empty profiles hash nowhere).
    keys: ArenaBackend,
    /// Per-table sorted bucket index: `(index_keys[t], index_users[t])`
    /// aligned pairs sorted by key (stable ⇒ users ascending per key).
    index_keys: Vec<ArenaBackend>,
    index_users: Vec<ArenaBackend>,
}

impl OocState {
    /// Evicts every resident spill page (no-op on heap backends).
    fn advise_all_cold(&self) -> io::Result<()> {
        self.store.advise_cold_rows(0, self.store.len())?;
        self.keys.advise_cold(0, self.keys.len())?;
        for (k, u) in self.index_keys.iter().zip(&self.index_users) {
            k.advise_cold(0, k.len())?;
            u.advise_cold(0, u.len())?;
        }
        Ok(())
    }

    fn spilled_bytes(&self) -> u64 {
        let words = self.store.arena_words().len()
            + self.keys.len()
            + self.index_keys.iter().map(|a| a.len()).sum::<usize>()
            + self.index_users.iter().map(|a| a.len()).sum::<usize>();
        if self.store.is_spilled() {
            words as u64 * 8
        } else {
            0
        }
    }
}

/// Allocates a words arena on the configured backend.
fn make_arena(cfg: &OocConfig, name: &str, len: usize) -> io::Result<ArenaBackend> {
    if cfg.spill {
        ArenaBackend::spill(&cfg.spill_dir.join(name), len)
    } else {
        Ok(ArenaBackend::heap(len))
    }
}

/// Phase 1+2: stream profiles into a (possibly spilled) fingerprint store
/// and per-table key arena, then sort the per-table bucket indexes.
fn prepare<P: ProfileSource + ?Sized, H: ItemHasher + Sync>(
    source: &P,
    params: &ShfParams<H>,
    cfg: &OocConfig,
    stats: &mut OocStats,
) -> io::Result<OocState> {
    let n = source.n_users();

    // Fingerprint + keys in one streaming pass over the profiles.
    let t0 = Instant::now();
    let _span = trace::span_arg("phase", "ooc_fingerprint", n as u64);
    std::fs::create_dir_all(&cfg.spill_dir)?;
    let mut writer = if cfg.spill {
        ShfStreamWriter::new_spilled(params.bits(), n, &cfg.spill_dir)?
    } else {
        ShfStreamWriter::new(params.bits(), n)
    };
    let mut keys = make_arena(cfg, "keys.words", cfg.tables * n)?;
    let mut items: Vec<u32> = Vec::new();
    let mut batch: Vec<(u32, u32)> = Vec::with_capacity(INGEST_BATCH);
    for u in 0..n as u32 {
        source.items_into(u, &mut items);
        stats.associations += items.len() as u64;
        for t in 0..cfg.tables {
            if let Some(key) = bucket_key(&items, table_seed(cfg.seed, t)) {
                keys[t * n + u as usize] = key;
            }
        }
        for &it in &items {
            batch.push((u, it));
            if batch.len() == INGEST_BATCH {
                writer.ingest_batch(&batch, params.hasher());
                batch.clear();
            }
        }
    }
    writer.ingest_batch(&batch, params.hasher());
    drop(batch);
    let store = writer.finish();
    keys.sync()?;
    drop(_span);
    stats.fingerprint_wall = t0.elapsed();

    // Sort each table's (key, user) pairs into the spilled bucket index.
    // The transient sort buffer is the memory peak of this phase — one
    // table at a time, freed before the next.
    let t1 = Instant::now();
    let _span = trace::span_arg("phase", "ooc_index", cfg.tables as u64);
    let mut index_keys = Vec::with_capacity(cfg.tables);
    let mut index_users = Vec::with_capacity(cfg.tables);
    for t in 0..cfg.tables {
        let mut pairs: Vec<(u64, u32)> = (0..n as u32)
            .filter(|&u| store.cardinality(u) != 0)
            .map(|u| (keys[t * n + u as usize], u))
            .collect();
        // Stable by key: equal-key users stay in ascending-id order,
        // matching the insertion order of the in-RAM bucket vectors.
        pairs.sort_by_key(|&(key, _)| key);
        let mut ik = make_arena(cfg, &format!("index-keys-{t}.words"), pairs.len())?;
        let mut iu = make_arena(cfg, &format!("index-users-{t}.words"), pairs.len())?;
        for (i, &(key, u)) in pairs.iter().enumerate() {
            ik[i] = key;
            iu[i] = u as u64;
        }
        ik.sync()?;
        iu.sync()?;
        index_keys.push(ik);
        index_users.push(iu);
    }
    stats.index_wall = t1.elapsed();

    stats.n_users = n;
    stats.backend = store.backend_kind();
    Ok(OocState {
        store,
        keys,
        index_keys,
        index_users,
    })
}

/// Phase 3: scan one shard's users and spill their top-k lists as a
/// `GFCS` segment. Returns the similarity-evaluation count.
fn scan_shard(
    state: &OocState,
    cfg: &OocConfig,
    shard: usize,
    lo: u32,
    hi: u32,
    stamp: &mut VisitStamp,
    seg_path: &Path,
) -> io::Result<u64> {
    let _span = trace::span_arg("phase", "ooc_shard", shard as u64);
    let n = state.store.len();
    let file = BufWriter::new(File::create(seg_path)?);
    let mut seg = SegmentWriter::new(
        file,
        cfg.k,
        u64::from(lo),
        u64::from(hi - lo),
        !cfg.compact_segments,
    )?;
    let mut candidates: Vec<u32> = Vec::new();
    let mut sims: Vec<f64> = Vec::new();
    let mut evals = 0u64;
    for u in lo..hi {
        stamp.next_round();
        stamp.mark(u as usize);
        candidates.clear();
        if state.store.cardinality(u) != 0 {
            for t in 0..cfg.tables {
                let key = state.keys[t * n + u as usize];
                let ik: &[u64] = &state.index_keys[t];
                let start = ik.partition_point(|&x| x < key);
                let end = ik.partition_point(|&x| x <= key);
                if cfg.max_bucket != 0 && end - start > cfg.max_bucket {
                    continue; // capped: this bucket is too hot to scan
                }
                for &v in &state.index_users[t][start..end] {
                    if stamp.mark(v as usize) {
                        candidates.push(v as u32);
                    }
                }
            }
        }
        evals += candidates.len() as u64;
        sims.clear();
        sims.resize(candidates.len(), 0.0);
        state.store.jaccard_batch(u, &candidates, &mut sims);
        let mut top = TopK::new(cfg.k);
        for (&v, &s) in candidates.iter().zip(&sims) {
            top.offer(s, v);
        }
        seg.push_list(&top.into_sorted())?;
    }
    let mut file = seg.finish()?;
    file.flush()?;
    Ok(evals)
}

/// Runs phases 1–3 and returns the state plus segment paths, in shard
/// order. Shared by [`build`] and [`build_to_disk`].
fn run_scan<P: ProfileSource + ?Sized, H: ItemHasher + Sync>(
    source: &P,
    params: &ShfParams<H>,
    cfg: &OocConfig,
) -> io::Result<(OocState, Vec<PathBuf>, OocStats)> {
    assert!(cfg.k > 0, "k must be positive");
    assert!(cfg.tables > 0, "need at least one hash table");
    let mut stats = OocStats::default();
    let state = prepare(source, params, cfg, &mut stats)?;
    let n = state.store.len();

    let arena_bytes = state.store.arena_words().len() as u64 * 8;
    stats.arena_bytes = arena_bytes;
    let shards = cfg.effective_shards(n, arena_bytes);
    stats.shards = shards;

    let t0 = Instant::now();
    let mut stamp = VisitStamp::new(n);
    let mut segments = Vec::with_capacity(shards);
    let per = n.div_ceil(shards.max(1)).max(1);
    for s in 0..shards {
        let lo = (s * per).min(n) as u32;
        let hi = ((s + 1) * per).min(n) as u32;
        let path = cfg.spill_dir.join(format!("seg-{s:05}.gfcs"));
        let t_shard = Instant::now();
        let evals = scan_shard(&state, cfg, s, lo, hi, &mut stamp, &path)?;
        stats.similarity_evals += evals;
        stats.shard_walls.push(t_shard.elapsed());
        // Drop this shard's page residency before the next one starts:
        // the whole point of the spill backend.
        state.advise_all_cold()?;
        segments.push(path);
    }
    stats.scan_wall = t0.elapsed();
    stats.spilled_bytes = state.spilled_bytes()
        + segments
            .iter()
            .map(|p| std::fs::metadata(p).map(|m| m.len()).unwrap_or(0))
            .sum::<u64>();
    Ok((state, segments, stats))
}

/// Out-of-core GoldFinger LSH build, stitched into an in-memory
/// [`KnnGraph`].
///
/// With `max_bucket == 0` and `compact_segments == false` (the
/// defaults), the graph is bit-identical to
/// [`Lsh::build`](crate::lsh::Lsh::build) with the same `(tables, seed)`
/// over [`ShfJaccard`](goldfinger_core::similarity::ShfJaccard) of the
/// same fingerprint store, for any shard count and either backend.
///
/// # Panics
/// Panics if `k == 0` or `tables == 0`.
pub fn build<P: ProfileSource + ?Sized, H: ItemHasher + Sync>(
    source: &P,
    params: &ShfParams<H>,
    cfg: &OocConfig,
) -> io::Result<(KnnGraph, OocStats)> {
    let total = Instant::now();
    let (state, segments, mut stats) = run_scan(source, params, cfg)?;
    let n = state.store.len() as u64;

    let t0 = Instant::now();
    let _span = trace::span_arg("phase", "ooc_stitch", segments.len() as u64);
    let mut builder = CsrBuilder::with_capacity(cfg.k, n as usize);
    for path in &segments {
        let mut r = BufReader::new(File::open(path)?);
        let seg = read_segment(&mut r, n)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        seg.append_into(&mut builder);
    }
    stats.stitch_wall = t0.elapsed();
    stats.wall = total.elapsed();
    Ok((builder.finish(), stats))
}

/// Out-of-core build stitched **streaming** into a `GFG1` graph file at
/// `out` — the full edge set never exists in RAM, so peak memory stays
/// bounded even when the final graph is larger than the budget.
///
/// The file is byte-identical to
/// [`write_knn_graph`](crate::serial::write_knn_graph) of the
/// [`build`]-returned graph.
///
/// # Panics
/// Panics if `k == 0` or `tables == 0`.
pub fn build_to_disk<P: ProfileSource + ?Sized, H: ItemHasher + Sync>(
    source: &P,
    params: &ShfParams<H>,
    cfg: &OocConfig,
    out: &Path,
) -> io::Result<OocStats> {
    let total = Instant::now();
    let (state, segments, mut stats) = run_scan(source, params, cfg)?;
    let n = state.store.len() as u64;

    let t0 = Instant::now();
    let _span = trace::span_arg("phase", "ooc_stitch", segments.len() as u64);
    let mut w = BufWriter::new(File::create(out)?);
    w.write_all(b"GFG1")?;
    w.write_all(&(cfg.k as u32).to_le_bytes())?;
    w.write_all(&(n as u32).to_le_bytes())?;
    for path in &segments {
        let mut r = BufReader::new(File::open(path)?);
        let seg = read_segment(&mut r, n)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        for local in 0..seg.n_users() {
            let list = seg.list(local);
            w.write_all(&(list.len() as u32).to_le_bytes())?;
            for s in &list {
                w.write_all(&s.user.to_le_bytes())?;
                w.write_all(&s.sim.to_le_bytes())?;
            }
        }
    }
    w.flush()?;
    stats.stitch_wall = t0.elapsed();
    stats.wall = total.elapsed();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lsh::Lsh;
    use crate::serial::write_knn_graph;
    use goldfinger_core::hash::{DynHasher, HasherKind};
    use goldfinger_core::profile::ProfileStore;
    use goldfinger_core::similarity::ShfJaccard;

    fn fixture() -> ProfileStore {
        // Clustered + ragged + one empty profile: every routing edge case.
        let mut lists: Vec<Vec<u32>> = Vec::new();
        for u in 0..14u32 {
            let base = (u / 5) * 40;
            lists.push((base..base + 20 + u % 7).collect());
        }
        lists.push(vec![]);
        for u in 0..14u32 {
            lists.push(((u * 3)..(u * 3 + 9)).collect());
        }
        ProfileStore::from_item_lists(lists)
    }

    fn params() -> ShfParams<DynHasher> {
        ShfParams::new(256, DynHasher::new(HasherKind::Jenkins, 42))
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gf-ooc-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn reference(profiles: &ProfileStore, tables: usize, seed: u64, k: usize) -> KnnGraph {
        let fps = params().fingerprint_store(profiles);
        Lsh {
            tables,
            seed,
            threads: 1,
        }
        .build(profiles, &ShfJaccard::new(&fps), k)
        .graph
    }

    #[test]
    fn matches_in_ram_lsh_for_any_shard_count() {
        let profiles = fixture();
        let expected = reference(&profiles, 4, 99, 3);
        for shards in [1usize, 2, 5, 29] {
            let dir = tmp(&format!("eq{shards}"));
            let mut cfg = OocConfig::new(3, 4, 99, &dir);
            cfg.shards = shards;
            cfg.spill = false;
            let (graph, stats) = build(&profiles, &params(), &cfg).unwrap();
            assert_eq!(graph.n_users(), expected.n_users());
            for u in 0..graph.n_users() as u32 {
                assert_eq!(
                    graph.neighbors(u),
                    expected.neighbors(u),
                    "shards={shards} u={u}"
                );
            }
            assert_eq!(stats.shards, shards.min(profiles.n_users()));
            assert!(stats.similarity_evals > 0);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn spilled_build_matches_heap_build() {
        let profiles = fixture();
        let expected = reference(&profiles, 3, 7, 2);
        let dir = tmp("spill");
        let mut cfg = OocConfig::new(2, 3, 7, &dir);
        cfg.shards = 3;
        cfg.spill = true;
        let (graph, stats) = build(&profiles, &params(), &cfg).unwrap();
        assert_eq!(stats.backend, "mmap");
        assert!(stats.spilled_bytes > 0);
        for u in 0..graph.n_users() as u32 {
            assert_eq!(graph.neighbors(u), expected.neighbors(u), "u={u}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_stitch_is_byte_identical_to_in_memory_graph() {
        let profiles = fixture();
        let dir = tmp("disk");
        let mut cfg = OocConfig::new(3, 4, 99, &dir);
        cfg.shards = 4;
        cfg.spill = false;
        let (graph, _) = build(&profiles, &params(), &cfg).unwrap();
        let out = dir.join("graph.gfg");
        build_to_disk(&profiles, &params(), &cfg, &out).unwrap();
        let mut expected = Vec::new();
        write_knn_graph(&graph, &mut expected).unwrap();
        assert_eq!(std::fs::read(&out).unwrap(), expected);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bucket_cap_only_drops_hot_buckets() {
        // All users share one hot bucket (identical profiles) except two
        // loners; with a tiny cap the hot bucket is skipped wholesale.
        let mut lists: Vec<Vec<u32>> = (0..8).map(|_| (0..20).collect()).collect();
        lists.push((100..120).collect());
        lists.push((100..120).collect());
        let profiles = ProfileStore::from_item_lists(lists);
        let dir = tmp("cap");
        let mut cfg = OocConfig::new(2, 2, 5, &dir);
        cfg.shards = 1;
        cfg.spill = false;
        cfg.max_bucket = 4;
        let (graph, stats) = build(&profiles, &params(), &cfg).unwrap();
        // The clones' bucket (8 users) is over the cap: no neighbours.
        for u in 0..8u32 {
            assert!(graph.neighbors(u).is_empty(), "u={u}");
        }
        // The loner pair (bucket of 2) is under the cap and survives.
        assert_eq!(graph.neighbors(8)[0].user, 9);
        assert_eq!(graph.neighbors(9)[0].user, 8);
        assert!(stats.similarity_evals > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn effective_shards_honours_budget_and_floor() {
        let cfg = OocConfig::new(5, 2, 1, "/tmp/x");
        assert_eq!(cfg.effective_shards(1000, 1 << 20), 1); // unbounded
        let mut budgeted = cfg.clone();
        budgeted.mem_budget = 1 << 20;
        // 4 × (1MiB arena + 48KiB keys) / 1MiB ≈ 5.
        let s = budgeted.effective_shards(1000, 1 << 20);
        assert!(s >= 4, "derived {s}");
        let mut fixed = cfg;
        fixed.shards = 7;
        assert_eq!(fixed.effective_shards(3, 1 << 30), 3); // capped at n
    }
}
