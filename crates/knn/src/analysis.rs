//! Structural analyses of KNN graphs.
//!
//! Tools the KNN-graph literature (including the paper's own Figures
//! 11–12 discussion of "similarity topology") routinely needs: the reverse
//! graph (who points at me — NNDescent's search widener), in-degree
//! distributions (hub detection: fingerprint distortion inflates hubs),
//! and edge-set overlap between two graphs (a stricter cousin of
//! [`crate::metrics::edge_recall`], symmetric in its arguments).

use crate::graph::KnnGraph;

/// The reverse adjacency of a KNN graph: `reverse[v]` lists every user `u`
/// with `v ∈ knn(u)`, in increasing order of `u`.
pub fn reverse_graph(graph: &KnnGraph) -> Vec<Vec<u32>> {
    let mut reverse = vec![Vec::new(); graph.n_users()];
    for (u, v, _) in graph.edges() {
        reverse[v as usize].push(u);
    }
    reverse
}

/// In-degree of every user (how many KNN lists contain it).
pub fn in_degrees(graph: &KnnGraph) -> Vec<u32> {
    let mut deg = vec![0u32; graph.n_users()];
    for (_, v, _) in graph.edges() {
        deg[v as usize] += 1;
    }
    deg
}

/// Summary of an in-degree distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Mean in-degree (= mean out-degree = mean list length).
    pub mean: f64,
    /// Maximum in-degree (hubs).
    pub max: u32,
    /// Number of users with in-degree 0 (unreachable through the graph).
    pub orphans: usize,
    /// Gini coefficient of the in-degree distribution (0 = perfectly even,
    /// → 1 = one hub absorbs everything).
    pub gini: f64,
}

/// Computes in-degree statistics.
pub fn degree_stats(graph: &KnnGraph) -> DegreeStats {
    let mut deg = in_degrees(graph);
    let n = deg.len();
    if n == 0 {
        return DegreeStats {
            mean: 0.0,
            max: 0,
            orphans: 0,
            gini: 0.0,
        };
    }
    let total: u64 = deg.iter().map(|&d| d as u64).sum();
    let mean = total as f64 / n as f64;
    let max = deg.iter().copied().max().unwrap_or(0);
    let orphans = deg.iter().filter(|&&d| d == 0).count();
    // Gini via the sorted formula: G = (2·Σ i·x_i)/(n·Σ x) − (n+1)/n.
    deg.sort_unstable();
    let gini = if total == 0 {
        0.0
    } else {
        let weighted: f64 = deg
            .iter()
            .enumerate()
            .map(|(i, &d)| (i as f64 + 1.0) * d as f64)
            .sum();
        (2.0 * weighted) / (n as f64 * total as f64) - (n as f64 + 1.0) / n as f64
    };
    DegreeStats {
        mean,
        max,
        orphans,
        gini,
    }
}

/// Jaccard overlap of the two graphs' directed edge sets (ignoring
/// similarity values). 1 when they are identical, 0 when disjoint.
///
/// # Panics
/// Panics if the graphs cover different populations.
pub fn edge_overlap(a: &KnnGraph, b: &KnnGraph) -> f64 {
    assert_eq!(
        a.n_users(),
        b.n_users(),
        "graphs cover different populations"
    );
    let mut inter = 0usize;
    let mut union = 0usize;
    for u in 0..a.n_users() as u32 {
        let ea: Vec<u32> = a.neighbors(u).iter().map(|s| s.user).collect();
        let eb: Vec<u32> = b.neighbors(u).iter().map(|s| s.user).collect();
        let shared = ea.iter().filter(|v| eb.contains(v)).count();
        inter += shared;
        union += ea.len() + eb.len() - shared;
    }
    if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use goldfinger_core::topk::Scored;

    fn s(sim: f64, user: u32) -> Scored {
        Scored { sim, user }
    }

    fn star_graph() -> KnnGraph {
        // Users 1..=3 all point at user 0; user 0 points at 1.
        KnnGraph::from_lists(
            1,
            vec![
                vec![s(0.9, 1)],
                vec![s(0.9, 0)],
                vec![s(0.8, 0)],
                vec![s(0.7, 0)],
            ],
        )
    }

    #[test]
    fn reverse_graph_inverts_edges() {
        let rev = reverse_graph(&star_graph());
        assert_eq!(rev[0], vec![1, 2, 3]);
        assert_eq!(rev[1], vec![0]);
        assert!(rev[2].is_empty());
    }

    #[test]
    fn in_degrees_count_incoming_edges() {
        let deg = in_degrees(&star_graph());
        assert_eq!(deg, vec![3, 1, 0, 0]);
    }

    #[test]
    fn degree_stats_detect_the_hub() {
        let stats = degree_stats(&star_graph());
        assert_eq!(stats.max, 3);
        assert_eq!(stats.orphans, 2);
        assert!((stats.mean - 1.0).abs() < 1e-12);
        assert!(stats.gini > 0.5, "gini = {}", stats.gini);
    }

    #[test]
    fn uniform_graph_has_low_gini() {
        // A ring: everyone has in-degree exactly 1.
        let ring = KnnGraph::from_lists(1, (0..6u32).map(|u| vec![s(0.5, (u + 1) % 6)]).collect());
        let stats = degree_stats(&ring);
        assert_eq!(stats.max, 1);
        assert_eq!(stats.orphans, 0);
        assert!(stats.gini.abs() < 1e-9, "gini = {}", stats.gini);
    }

    #[test]
    fn edge_overlap_bounds() {
        let g = star_graph();
        assert!((edge_overlap(&g, &g) - 1.0).abs() < 1e-12);
        let other = KnnGraph::from_lists(
            1,
            vec![
                vec![s(0.9, 2)],
                vec![s(0.9, 3)],
                vec![s(0.8, 3)],
                vec![s(0.7, 2)],
            ],
        );
        assert_eq!(edge_overlap(&g, &other), 0.0);
    }

    #[test]
    fn empty_graphs_overlap_fully() {
        let a = KnnGraph::from_lists(2, vec![vec![], vec![]]);
        let b = KnnGraph::from_lists(2, vec![vec![], vec![]]);
        assert_eq!(edge_overlap(&a, &b), 1.0);
        let stats = degree_stats(&a);
        assert_eq!(stats.mean, 0.0);
        assert_eq!(stats.gini, 0.0);
    }
}
