//! Locality-Sensitive Hashing KNN construction (Indyk & Motwani, STOC 1998)
//! with MinHash bucketing (Broder 1997).
//!
//! Each of `tables` hash tables buckets users by the minimum of a min-wise
//! independent permutation over their profile items; two users collide in a
//! table with probability equal to their Jaccard index. Neighbours are then
//! searched only among same-bucket users.
//!
//! Bucket construction always reads *explicit* profiles — that cost is
//! proportional to the number of (user, item) associations and is **not**
//! reduced by GoldFinger, which is exactly why the paper observes little
//! GoldFinger speedup for LSH on sparse datasets (bucketing dominates):
//! only the in-bucket similarity evaluations go through the provider.

use crate::graph::{BuildStats, KnnGraph, KnnResult};
use goldfinger_core::hash::splitmix64_mix;
use goldfinger_core::profile::ProfileStore;
use goldfinger_core::similarity::Similarity;
use goldfinger_core::topk::TopK;
use goldfinger_core::visit::VisitStamp;
use goldfinger_obs::trace;
use goldfinger_obs::{BuildObserver, IterationEvent, NoopObserver, Phase};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// LSH parameters. The paper uses 10 hash functions (§3.3).
#[derive(Debug, Clone, Copy)]
pub struct Lsh {
    /// Number of hash tables (one MinHash permutation each).
    pub tables: usize,
    /// Seed deriving the per-table permutations.
    pub seed: u64,
    /// Worker threads for the in-bucket candidate scan (`0` = default
    /// parallelism, `1` = serial). Every per-user scan is self-contained,
    /// so the graph is bit-identical for any thread count.
    pub threads: usize,
}

impl Default for Lsh {
    fn default() -> Self {
        Lsh {
            tables: 10,
            seed: 0x15_4A,
            threads: 1,
        }
    }
}

/// Derives table `t`'s MinHash permutation seed from the build seed.
///
/// Public because the out-of-core pipeline ([`crate::oocbuild`]) must
/// reproduce the exact same bucketing to stay bit-identical to
/// [`Lsh::build`].
#[inline]
pub fn table_seed(seed: u64, t: usize) -> u64 {
    splitmix64_mix(seed ^ (t as u64).wrapping_mul(0x9E37))
}

/// MinHash bucket key of a profile under one table's permutation
/// ([`table_seed`]); `None` for an empty profile, which hashes nowhere.
#[inline]
pub fn bucket_key(items: &[u32], table_seed: u64) -> Option<u64> {
    items
        .iter()
        .map(|&i| splitmix64_mix(i as u64 ^ table_seed))
        .min()
}

impl Lsh {
    /// Builds an approximate KNN graph.
    ///
    /// `profiles` supplies the raw item sets for bucketing; `sim` scores the
    /// in-bucket candidates (explicit provider = native LSH, SHF provider =
    /// GoldFinger LSH).
    ///
    /// # Panics
    /// Panics if `k == 0`, `tables == 0`, or the provider's population
    /// differs from the profile store's.
    pub fn build<S: Similarity + ?Sized>(
        &self,
        profiles: &ProfileStore,
        sim: &S,
        k: usize,
    ) -> KnnResult {
        self.build_observed(profiles, sim, k, &NoopObserver)
    }

    /// Builds the graph, reporting progress to `obs`: one span for the
    /// GoldFinger-immune bucket construction
    /// ([`Phase::CandidateGeneration`]), one for the in-bucket scans
    /// ([`Phase::Join`]), and a single [`IterationEvent`] with the final
    /// counters. Observation never changes the output; with the default
    /// [`NoopObserver`] the hooks compile to nothing.
    ///
    /// # Panics
    /// Same contract as [`Lsh::build`].
    pub fn build_observed<S: Similarity + ?Sized, O: BuildObserver>(
        &self,
        profiles: &ProfileStore,
        sim: &S,
        k: usize,
        obs: &O,
    ) -> KnnResult {
        assert!(k > 0, "k must be positive");
        assert!(self.tables > 0, "need at least one hash table");
        assert_eq!(
            profiles.n_users(),
            sim.n_users(),
            "profile store and similarity provider disagree on population"
        );
        let n = profiles.n_users();
        let start = Instant::now();

        // Bucketing: the expensive, GoldFinger-immune phase.
        let bucket_start = O::ENABLED.then(Instant::now);
        let bucket_trace = trace::span("phase", "candidate_generation");
        let mut tables: Vec<HashMap<u64, Vec<u32>>> = Vec::with_capacity(self.tables);
        for t in 0..self.tables {
            let ts = table_seed(self.seed, t);
            let mut buckets: HashMap<u64, Vec<u32>> = HashMap::new();
            for (u, items) in profiles.iter() {
                // A user with no item hashes nowhere.
                let Some(key) = bucket_key(items, ts) else {
                    continue;
                };
                buckets.entry(key).or_default().push(u);
            }
            tables.push(buckets);
        }

        drop(bucket_trace);
        if let Some(t) = bucket_start {
            obs.on_span(Phase::CandidateGeneration, t.elapsed());
        }

        // Candidate scan: same-bucket users, deduplicated with stamps. Each
        // user's scan is self-contained (private stamp array + top-k), so
        // users are handed to threads with dynamic scheduling — bucket sizes
        // are skewed, which is exactly what stealing smooths out — and the
        // per-user results are scattered back by user id. The graph is
        // bit-identical to the serial scan for any thread count (the
        // `threads` field), at the price of one O(n) stamp array per thread.
        let scan_start = O::ENABLED.then(Instant::now);
        let scan_trace = trace::span("phase", "join");
        struct ScanSlot {
            stamp: VisitStamp,
            candidates: Vec<u32>,
            sims: Vec<f64>,
            evals: u64,
            out: Vec<(u32, Vec<goldfinger_core::topk::Scored>)>,
        }
        let states = goldfinger_core::parallel::par_fold_dynamic(
            n,
            self.threads,
            32,
            |_| ScanSlot {
                stamp: VisitStamp::new(n),
                candidates: Vec::new(),
                sims: Vec::new(),
                evals: 0,
                out: Vec::new(),
            },
            |slot: &mut ScanSlot, u| {
                let u = u as u32;
                slot.stamp.next_round();
                slot.stamp.mark(u as usize);
                let items = profiles.items(u);
                // Collect this user's bucket mates across every table (in
                // table order, stamp-deduplicated) first, then score the
                // whole list in one batched call — same candidates in the
                // same order as offering per pair, but through the gather
                // kernel for fingerprint providers.
                slot.candidates.clear();
                for (t, buckets) in tables.iter().enumerate() {
                    let Some(key) = bucket_key(items, table_seed(self.seed, t)) else {
                        break; // empty profile: no keys in any table
                    };
                    for &v in buckets.get(&key).map_or(&[][..], Vec::as_slice) {
                        if slot.stamp.mark(v as usize) {
                            slot.candidates.push(v);
                        }
                    }
                }
                slot.evals += slot.candidates.len() as u64;
                slot.sims.clear();
                slot.sims.resize(slot.candidates.len(), 0.0);
                sim.similarity_batch(u, &slot.candidates, &mut slot.sims);
                let mut top = TopK::new(k);
                for (&v, &s) in slot.candidates.iter().zip(&slot.sims) {
                    top.offer(s, v);
                }
                slot.out.push((u, top.into_sorted()));
            },
        );
        let mut evals = 0u64;
        let mut neighbors = vec![Vec::new(); n];
        for slot in states {
            evals += slot.evals;
            for (u, list) in slot.out {
                neighbors[u as usize] = list;
            }
        }
        drop(scan_trace);
        let wall = start.elapsed();
        if O::ENABLED {
            if let Some(t) = scan_start {
                obs.on_span(Phase::Join, t.elapsed());
            }
            obs.on_iteration(IterationEvent {
                iteration: 1,
                similarity_evals: evals,
                pruned_evals: 0,
                updates: 0,
                threshold: 0.0,
                wall,
            });
        }

        KnnResult {
            graph: KnnGraph::from_lists(k, neighbors),
            stats: BuildStats {
                similarity_evals: evals,
                pruned_evals: 0,
                iterations: 1,
                wall,
                prep_wall: Duration::ZERO,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use goldfinger_core::similarity::ExplicitJaccard;

    fn clustered() -> ProfileStore {
        let mut lists = Vec::new();
        for u in 0..10u32 {
            let mut items: Vec<u32> = (0..25).collect();
            items.push(200 + u);
            lists.push(items);
        }
        for u in 0..10u32 {
            let mut items: Vec<u32> = (100..125).collect();
            items.push(300 + u);
            lists.push(items);
        }
        ProfileStore::from_item_lists(lists)
    }

    #[test]
    fn same_cluster_users_share_buckets() {
        let profiles = clustered();
        let sim = ExplicitJaccard::new(&profiles);
        let result = Lsh::default().build(&profiles, &sim, 5);
        // High-similarity users (J ≈ 25/27) collide with near-certainty in
        // at least one of 10 tables.
        let mut found = 0usize;
        let mut total = 0usize;
        for u in 0..20u32 {
            for s in result.graph.neighbors(u) {
                total += 1;
                if (s.user < 10) == (u < 10) {
                    found += 1;
                }
            }
        }
        assert!(total > 0);
        assert_eq!(found, total, "cross-cluster neighbours found");
    }

    #[test]
    fn empty_profiles_get_no_neighbors_but_keep_slots() {
        let profiles =
            ProfileStore::from_item_lists(vec![(0..30).collect(), (0..30).collect(), vec![]]);
        let sim = ExplicitJaccard::new(&profiles);
        let result = Lsh::default().build(&profiles, &sim, 2);
        assert_eq!(result.graph.n_users(), 3);
        assert!(result.graph.neighbors(2).is_empty());
        assert_eq!(result.graph.neighbors(0)[0].user, 1);
    }

    #[test]
    fn evals_are_bounded_by_bucket_collisions() {
        let profiles = clustered();
        let sim = ExplicitJaccard::new(&profiles);
        let result = Lsh::default().build(&profiles, &sim, 5);
        // Never more than full brute force (ordered pairs).
        assert!(result.stats.similarity_evals <= 20 * 19);
    }

    #[test]
    fn is_deterministic() {
        let profiles = clustered();
        let sim = ExplicitJaccard::new(&profiles);
        let a = Lsh::default().build(&profiles, &sim, 5);
        let b = Lsh::default().build(&profiles, &sim, 5);
        for u in 0..20u32 {
            assert_eq!(a.graph.neighbors(u), b.graph.neighbors(u));
        }
    }

    #[test]
    fn parallel_scan_is_bit_identical_to_serial() {
        let profiles = clustered();
        let sim = ExplicitJaccard::new(&profiles);
        let serial = Lsh::default().build(&profiles, &sim, 5);
        for threads in [2usize, 3, 8] {
            let par = Lsh {
                threads,
                ..Lsh::default()
            }
            .build(&profiles, &sim, 5);
            assert_eq!(par.stats.similarity_evals, serial.stats.similarity_evals);
            for u in 0..20u32 {
                assert_eq!(
                    par.graph.neighbors(u),
                    serial.graph.neighbors(u),
                    "threads={threads} u={u}"
                );
            }
        }
    }

    #[test]
    fn more_tables_find_no_fewer_candidates() {
        let profiles = clustered();
        let sim = ExplicitJaccard::new(&profiles);
        let small = Lsh {
            tables: 1,
            seed: 1,
            ..Lsh::default()
        }
        .build(&profiles, &sim, 5);
        let large = Lsh {
            tables: 12,
            seed: 1,
            ..Lsh::default()
        }
        .build(&profiles, &sim, 5);
        assert!(large.stats.similarity_evals >= small.stats.similarity_evals);
    }

    #[test]
    #[should_panic(expected = "disagree")]
    fn population_mismatch_panics() {
        let profiles = clustered();
        let other = ProfileStore::from_item_lists(vec![vec![1]]);
        let sim = ExplicitJaccard::new(&other);
        let _ = Lsh::default().build(&profiles, &sim, 5);
    }
}
