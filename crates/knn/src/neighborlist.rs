//! The mutable k-bounded neighbour lists greedy algorithms refine.

use goldfinger_core::topk::Scored;
use rand::rngs::StdRng;
use rand::Rng;

/// One candidate neighbour inside a [`NeighborList`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NeighborEntry {
    /// Similarity to the list's owner.
    pub sim: f64,
    /// Neighbour user id.
    pub user: u32,
    /// NNDescent's "new" flag: set when the entry has not yet taken part in
    /// a local join.
    pub is_new: bool,
}

/// A capacity-`k` neighbour list with duplicate rejection and
/// replace-the-worst updates — the building block of NNDescent and Hyrec.
///
/// Determinism: ties on similarity are broken towards lower user ids, so a
/// fixed seed yields bit-identical graphs across runs.
#[derive(Debug, Clone)]
pub struct NeighborList {
    k: usize,
    entries: Vec<NeighborEntry>,
}

/// What happened to an offered candidate — the eviction-reporting variant
/// of [`NeighborList::insert`] that reverse-adjacency maintenance needs:
/// every membership change the list makes is visible to the caller, so an
/// inverted index can be updated without rescanning the list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Offer {
    /// The candidate was already present; the list is unchanged.
    Duplicate,
    /// The list was full and the candidate did not beat the worst entry.
    Rejected,
    /// The candidate was appended to a non-full list.
    Added,
    /// The candidate replaced the worst entry; the evicted user is carried
    /// so reverse indices can drop the stale edge.
    Replaced(u32),
}

impl Offer {
    /// True when the offer changed the list's membership.
    pub fn accepted(&self) -> bool {
        matches!(self, Offer::Added | Offer::Replaced(_))
    }
}

impl NeighborList {
    /// Creates an empty list of capacity `k`.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        NeighborList {
            k,
            entries: Vec::with_capacity(k),
        }
    }

    /// Capacity.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entry is stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True if `user` is already a neighbour.
    pub fn contains(&self, user: u32) -> bool {
        self.entries.iter().any(|e| e.user == user)
    }

    /// Offers `(user, sim)`; returns `true` if the list changed.
    ///
    /// Rejects duplicates; when full, replaces the worst entry if the
    /// candidate is strictly better (ties towards lower user id). Inserted
    /// entries carry `is_new = true`.
    pub fn insert(&mut self, user: u32, sim: f64) -> bool {
        self.offer(user, sim).accepted()
    }

    /// [`NeighborList::insert`] with a full account of the outcome: whether
    /// the candidate was a duplicate, was rejected, was appended, or
    /// replaced (and if so, whom it evicted).
    pub fn offer(&mut self, user: u32, sim: f64) -> Offer {
        debug_assert!(!sim.is_nan(), "similarity must not be NaN");
        if self.contains(user) {
            return Offer::Duplicate;
        }
        let entry = NeighborEntry {
            sim,
            user,
            is_new: true,
        };
        if self.entries.len() < self.k {
            self.entries.push(entry);
            return Offer::Added;
        }
        let worst = self.worst_index();
        let w = self.entries[worst];
        if sim > w.sim || (sim == w.sim && user < w.user) {
            self.entries[worst] = entry;
            Offer::Replaced(w.user)
        } else {
            Offer::Rejected
        }
    }

    /// Overwrites the stored similarity of `user` in place, preserving its
    /// membership and `is_new` flag. Returns `false` when `user` is not in
    /// the list.
    ///
    /// This is the correct move when a *member's* similarity changes (e.g.
    /// its profile was updated): the entry may now be the worst and get
    /// displaced by future candidates, but it must not jump the
    /// replace-the-worst queue the way a remove-then-insert would.
    pub fn update_sim(&mut self, user: u32, sim: f64) -> bool {
        debug_assert!(!sim.is_nan(), "similarity must not be NaN");
        match self.entries.iter_mut().find(|e| e.user == user) {
            Some(e) => {
                e.sim = sim;
                true
            }
            None => false,
        }
    }

    /// Removes `user` from the list; returns `true` if it was present.
    /// Entries are unordered, so removal is a swap-delete.
    pub fn remove(&mut self, user: u32) -> bool {
        match self.entries.iter().position(|e| e.user == user) {
            Some(i) => {
                self.entries.swap_remove(i);
                true
            }
            None => false,
        }
    }

    /// Similarity of the worst entry (`-inf` when empty, so any candidate
    /// can pass a `sim > worst` pre-check).
    pub fn worst_sim(&self) -> f64 {
        if self.entries.len() < self.k {
            f64::NEG_INFINITY
        } else {
            self.entries[self.worst_index()].sim
        }
    }

    /// Entries, unsorted.
    pub fn entries(&self) -> &[NeighborEntry] {
        &self.entries
    }

    /// Mutable entries (for flag bookkeeping).
    pub fn entries_mut(&mut self) -> &mut [NeighborEntry] {
        &mut self.entries
    }

    /// Neighbour ids, unsorted.
    pub fn users(&self) -> impl Iterator<Item = u32> + '_ {
        self.entries.iter().map(|e| e.user)
    }

    /// Converts to a sorted [`Scored`] list (descending similarity, ties by
    /// ascending user id).
    pub fn to_sorted(&self) -> Vec<Scored> {
        let mut out: Vec<Scored> = self
            .entries
            .iter()
            .map(|e| Scored {
                sim: e.sim,
                user: e.user,
            })
            .collect();
        out.sort_unstable_by(|a, b| {
            b.sim
                .partial_cmp(&a.sim)
                .expect("similarities are not NaN")
                .then(a.user.cmp(&b.user))
        });
        out
    }

    fn worst_index(&self) -> usize {
        let mut worst = 0usize;
        for (i, e) in self.entries.iter().enumerate().skip(1) {
            let w = &self.entries[worst];
            if e.sim < w.sim || (e.sim == w.sim && e.user > w.user) {
                worst = i;
            }
        }
        worst
    }
}

/// Initialises one random neighbour list per user: `k` distinct random
/// neighbours (≠ owner), scored with the provider. Counts the similarity
/// evaluations it performs into `evals`.
pub fn random_lists<S: goldfinger_core::similarity::Similarity + ?Sized>(
    sim: &S,
    k: usize,
    rng: &mut StdRng,
    evals: &mut u64,
) -> Vec<NeighborList> {
    let n = sim.n_users();
    (0..n)
        .map(|u| {
            let mut list = NeighborList::new(k);
            let wanted = k.min(n.saturating_sub(1));
            let mut guard = 0usize;
            while list.len() < wanted && guard < 20 * k + 100 {
                guard += 1;
                let v = rng.gen_range(0..n) as u32;
                if v as usize == u || list.contains(v) {
                    continue;
                }
                *evals += 1;
                list.insert(v, sim.similarity(u as u32, v));
            }
            list
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use goldfinger_core::profile::ProfileStore;
    use goldfinger_core::similarity::ExplicitJaccard;
    use rand::SeedableRng;

    #[test]
    fn insert_dedups_and_replaces_worst() {
        let mut l = NeighborList::new(2);
        assert!(l.insert(1, 0.5));
        assert!(!l.insert(1, 0.5), "duplicate must be rejected");
        assert!(l.insert(2, 0.3));
        assert_eq!(l.worst_sim(), 0.3);
        assert!(l.insert(3, 0.4)); // replaces user 2
        assert!(!l.contains(2));
        assert!(!l.insert(4, 0.1));
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn offer_reports_membership_changes() {
        let mut l = NeighborList::new(2);
        assert_eq!(l.offer(1, 0.5), Offer::Added);
        assert_eq!(l.offer(1, 0.9), Offer::Duplicate);
        assert_eq!(l.offer(2, 0.3), Offer::Added);
        assert_eq!(l.offer(3, 0.4), Offer::Replaced(2));
        assert_eq!(l.offer(4, 0.1), Offer::Rejected);
        assert!(Offer::Added.accepted() && Offer::Replaced(7).accepted());
        assert!(!Offer::Rejected.accepted() && !Offer::Duplicate.accepted());
    }

    #[test]
    fn update_sim_changes_value_in_place() {
        let mut l = NeighborList::new(2);
        l.insert(1, 0.5);
        l.insert(2, 0.8);
        l.entries_mut()[0].is_new = false;
        assert!(l.update_sim(1, 0.1));
        assert!(!l.update_sim(9, 0.7), "absent user cannot be updated");
        let e = l.entries().iter().find(|e| e.user == 1).unwrap();
        assert_eq!(e.sim, 0.1);
        assert!(!e.is_new, "in-place update must preserve the flag");
        assert_eq!(l.len(), 2);
        // The downgraded entry is now the worst and loses to a fresh offer.
        assert_eq!(l.offer(3, 0.4), Offer::Replaced(1));
    }

    #[test]
    fn remove_deletes_membership() {
        let mut l = NeighborList::new(3);
        l.insert(1, 0.5);
        l.insert(2, 0.8);
        assert!(l.remove(1));
        assert!(!l.remove(1), "second removal is a no-op");
        assert!(!l.contains(1));
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn ties_replace_towards_lower_ids() {
        let mut l = NeighborList::new(1);
        l.insert(9, 0.5);
        assert!(l.insert(3, 0.5), "equal sim but lower id should replace");
        assert!(!l.insert(7, 0.5), "equal sim but higher id should not");
        assert!(l.contains(3));
    }

    #[test]
    fn to_sorted_orders_descending() {
        let mut l = NeighborList::new(3);
        l.insert(5, 0.2);
        l.insert(6, 0.9);
        l.insert(7, 0.2);
        let sorted = l.to_sorted();
        assert_eq!(
            sorted.iter().map(|s| s.user).collect::<Vec<_>>(),
            vec![6, 5, 7]
        );
    }

    #[test]
    fn new_flag_set_on_insert() {
        let mut l = NeighborList::new(2);
        l.insert(1, 0.5);
        assert!(l.entries()[0].is_new);
        l.entries_mut()[0].is_new = false;
        assert!(!l.entries()[0].is_new);
    }

    #[test]
    fn random_lists_have_k_distinct_non_self_entries() {
        let profiles =
            ProfileStore::from_item_lists((0..20).map(|i| vec![i as u32, i as u32 + 1]).collect());
        let sim = ExplicitJaccard::new(&profiles);
        let mut rng = StdRng::seed_from_u64(0);
        let mut evals = 0u64;
        let lists = random_lists(&sim, 5, &mut rng, &mut evals);
        assert_eq!(lists.len(), 20);
        assert!(evals >= 5 * 20);
        for (u, l) in lists.iter().enumerate() {
            assert_eq!(l.len(), 5);
            assert!(!l.contains(u as u32));
            let mut ids: Vec<u32> = l.users().collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), 5);
        }
    }

    #[test]
    fn random_lists_handle_tiny_populations() {
        let profiles = ProfileStore::from_item_lists(vec![vec![1], vec![2]]);
        let sim = ExplicitJaccard::new(&profiles);
        let mut rng = StdRng::seed_from_u64(0);
        let mut evals = 0u64;
        let lists = random_lists(&sim, 30, &mut rng, &mut evals);
        assert_eq!(lists[0].len(), 1);
        assert_eq!(lists[1].len(), 1);
    }
}
