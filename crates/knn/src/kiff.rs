//! KIFF (Boutet, Kermarrec, Mittal & Taïani, ICDE 2016): KNN construction
//! that exploits the bipartite user–item structure.
//!
//! Discussed in the paper's related work (§6): instead of comparing
//! arbitrary user pairs, KIFF only considers pairs that *share at least one
//! item*, discovered through an inverted item→users index, and ranks
//! candidates by their co-rating count before spending exact similarity
//! evaluations on the most promising ones. This "works particularly well on
//! sparse datasets but has more difficulties with denser ones" — popular
//! items blow up the candidate lists, which the `max_item_degree` cap
//! mitigates.
//!
//! Like every other algorithm in this crate, the candidate *scoring* goes
//! through a [`Similarity`] provider, so KIFF too is GoldFinger-ready.

use crate::graph::{BuildStats, KnnGraph, KnnResult};
use goldfinger_core::profile::ProfileStore;
use goldfinger_core::similarity::Similarity;
use goldfinger_core::topk::TopK;
use goldfinger_core::visit::VisitStamp;
use goldfinger_obs::trace;
use goldfinger_obs::{BuildObserver, IterationEvent, NoopObserver, Phase};
use std::time::Instant;

/// KIFF parameters.
///
/// ```
/// use goldfinger_core::profile::ProfileStore;
/// use goldfinger_core::similarity::ExplicitJaccard;
/// use goldfinger_knn::kiff::Kiff;
///
/// let profiles = ProfileStore::from_item_lists(vec![
///     vec![1, 2, 3], vec![2, 3, 4], vec![100, 101, 102],
/// ]);
/// let sim = ExplicitJaccard::new(&profiles);
/// let result = Kiff::default().build(&profiles, &sim, 2);
/// // Users 0 and 1 co-rate items 2–3; user 2 shares nothing and is
/// // never even considered as a candidate.
/// assert_eq!(result.graph.neighbors(0)[0].user, 1);
/// assert!(result.graph.neighbors(2).is_empty());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Kiff {
    /// Evaluate the top `candidate_factor · k` candidates by co-rating
    /// count for each user.
    pub candidate_factor: usize,
    /// Ignore items rated by more than this many users when generating
    /// candidates (`None` = no cap). Blockbusters connect everyone and add
    /// little signal — this is the sparse-vs-dense lever of the paper's
    /// related-work discussion.
    pub max_item_degree: Option<usize>,
}

impl Default for Kiff {
    fn default() -> Self {
        Kiff {
            candidate_factor: 4,
            max_item_degree: None,
        }
    }
}

impl Kiff {
    /// Builds an approximate KNN graph.
    ///
    /// `profiles` provides the bipartite structure (inverted index);
    /// `sim` scores the candidates (explicit = native, SHF = GoldFinger).
    ///
    /// # Panics
    /// Panics if `k == 0`, `candidate_factor == 0`, or the populations
    /// disagree.
    pub fn build<S: Similarity + ?Sized>(
        &self,
        profiles: &ProfileStore,
        sim: &S,
        k: usize,
    ) -> KnnResult {
        self.build_observed(profiles, sim, k, &NoopObserver)
    }

    /// Builds the graph, reporting progress to `obs`: one span for the
    /// GoldFinger-immune inverted-index construction
    /// ([`Phase::CandidateGeneration`]), one for the candidate ranking and
    /// scoring ([`Phase::Join`]), and a single [`IterationEvent`] with the
    /// final counters. Observation never changes the output; with the
    /// default [`NoopObserver`] the hooks compile to nothing.
    ///
    /// # Panics
    /// Same contract as [`Kiff::build`].
    pub fn build_observed<S: Similarity + ?Sized, O: BuildObserver>(
        &self,
        profiles: &ProfileStore,
        sim: &S,
        k: usize,
        obs: &O,
    ) -> KnnResult {
        assert!(k > 0, "k must be positive");
        assert!(
            self.candidate_factor > 0,
            "candidate_factor must be positive"
        );
        assert_eq!(
            profiles.n_users(),
            sim.n_users(),
            "profile store and similarity provider disagree on population"
        );
        let n = profiles.n_users();
        let start = Instant::now();

        // Inverted index: item → users having it (users arrive in id order).
        // This phase reads explicit profiles and is not accelerated by
        // GoldFinger, like LSH's bucketing.
        let index_start = O::ENABLED.then(Instant::now);
        let index_trace = trace::span("phase", "candidate_generation");
        let bound = profiles.item_universe_bound() as usize;
        let mut index: Vec<Vec<u32>> = vec![Vec::new(); bound];
        for (u, items) in profiles.iter() {
            for &i in items {
                index[i as usize].push(u);
            }
        }
        drop(index_trace);
        if let Some(t) = index_start {
            obs.on_span(Phase::CandidateGeneration, t.elapsed());
        }

        let degree_cap = self.max_item_degree.unwrap_or(usize::MAX);
        let budget = self.candidate_factor * k;
        let mut evals = 0u64;

        // Per-user scratch: co-rating counts with stamp-based reset.
        let score_start = O::ENABLED.then(Instant::now);
        let score_trace = trace::span("phase", "join");
        let mut count = vec![0u32; n];
        let mut visited = VisitStamp::new(n);
        let mut sims: Vec<f64> = Vec::new();
        let mut neighbors = Vec::with_capacity(n);
        for u in 0..n as u32 {
            visited.next_round();
            visited.mark(u as usize);
            let mut touched: Vec<u32> = Vec::new();
            for &i in profiles.items(u) {
                let raters = &index[i as usize];
                if raters.len() > degree_cap {
                    continue;
                }
                for &v in raters {
                    if v == u {
                        continue;
                    }
                    if visited.mark(v as usize) {
                        count[v as usize] = 0;
                        touched.push(v);
                    }
                    count[v as usize] += 1;
                }
            }
            // Rank candidates by co-rating count (ties: lower id first) and
            // spend similarity evaluations on the best `budget`.
            touched.sort_unstable_by(|&a, &b| {
                count[b as usize].cmp(&count[a as usize]).then(a.cmp(&b))
            });
            touched.truncate(budget);
            // Score the whole ranked shortlist in one batched call (the
            // gather kernel for fingerprint providers), then offer the
            // values in the same ranked order as the per-pair loop did.
            evals += touched.len() as u64;
            sims.clear();
            sims.resize(touched.len(), 0.0);
            sim.similarity_batch(u, &touched, &mut sims);
            let mut top = TopK::new(k);
            for (&v, &s) in touched.iter().zip(&sims) {
                top.offer(s, v);
            }
            neighbors.push(top.into_sorted());
        }
        drop(score_trace);

        let wall = start.elapsed();
        if O::ENABLED {
            if let Some(t) = score_start {
                obs.on_span(Phase::Join, t.elapsed());
            }
            obs.on_iteration(IterationEvent {
                iteration: 1,
                similarity_evals: evals,
                pruned_evals: 0,
                updates: 0,
                threshold: 0.0,
                wall,
            });
        }

        KnnResult {
            graph: KnnGraph::from_lists(k, neighbors),
            stats: BuildStats {
                similarity_evals: evals,
                pruned_evals: 0,
                iterations: 1,
                wall,
                ..BuildStats::default()
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::BruteForce;
    use crate::metrics::quality;
    use goldfinger_core::similarity::ExplicitJaccard;

    fn clustered() -> ProfileStore {
        let mut lists = Vec::new();
        for c in 0..4u32 {
            for u in 0..8u32 {
                let mut items: Vec<u32> = (c * 100..c * 100 + 15).collect();
                items.push(1_000 + c * 10 + u);
                lists.push(items);
            }
        }
        ProfileStore::from_item_lists(lists)
    }

    #[test]
    fn finds_cluster_neighbors() {
        let profiles = clustered();
        let sim = ExplicitJaccard::new(&profiles);
        let result = Kiff::default().build(&profiles, &sim, 4);
        for u in 0..32u32 {
            for s in result.graph.neighbors(u) {
                assert_eq!(s.user / 8, u / 8, "user {u} got {}", s.user);
            }
        }
    }

    #[test]
    fn quality_matches_brute_force_on_sparse_clusters() {
        let profiles = clustered();
        let sim = ExplicitJaccard::new(&profiles);
        let exact = BruteForce::default().build(&sim, 4);
        let kiff = Kiff::default().build(&profiles, &sim, 4);
        let q = quality(&kiff.graph, &exact.graph, &sim);
        assert!(q > 0.99, "quality {q}");
        // And it needed far fewer evaluations: candidates only come from
        // co-rated items.
        assert!(kiff.stats.similarity_evals < exact.stats.similarity_evals);
    }

    #[test]
    fn users_sharing_no_item_are_never_candidates() {
        let profiles = ProfileStore::from_item_lists(vec![
            vec![1, 2],
            vec![1, 3],
            vec![100, 101], // disconnected
        ]);
        let sim = ExplicitJaccard::new(&profiles);
        let result = Kiff::default().build(&profiles, &sim, 2);
        assert_eq!(result.graph.neighbors(0).len(), 1);
        assert_eq!(result.graph.neighbors(0)[0].user, 1);
        assert!(result.graph.neighbors(2).is_empty());
    }

    #[test]
    fn degree_cap_skips_blockbusters() {
        // Item 0 is shared by everyone; capping it disconnects the users.
        let profiles = ProfileStore::from_item_lists(vec![vec![0, 1], vec![0, 2], vec![0, 3]]);
        let sim = ExplicitJaccard::new(&profiles);
        let uncapped = Kiff::default().build(&profiles, &sim, 2);
        assert_eq!(uncapped.graph.neighbors(0).len(), 2);
        let capped = Kiff {
            max_item_degree: Some(2),
            ..Kiff::default()
        }
        .build(&profiles, &sim, 2);
        assert!(capped.graph.neighbors(0).is_empty());
    }

    #[test]
    fn budget_limits_evaluations() {
        let profiles = clustered();
        let sim = ExplicitJaccard::new(&profiles);
        let tight = Kiff {
            candidate_factor: 1,
            ..Kiff::default()
        }
        .build(&profiles, &sim, 2);
        // At most candidate_factor·k evaluations per user.
        assert!(tight.stats.similarity_evals <= 32 * 2);
    }

    #[test]
    fn empty_profiles_are_isolated_but_present() {
        let profiles = ProfileStore::from_item_lists(vec![vec![], vec![1], vec![1]]);
        let sim = ExplicitJaccard::new(&profiles);
        let result = Kiff::default().build(&profiles, &sim, 2);
        assert_eq!(result.graph.n_users(), 3);
        assert!(result.graph.neighbors(0).is_empty());
        assert_eq!(result.graph.neighbors(1)[0].user, 2);
    }
}
