//! User-id-partitioned shards of a dynamic KNN graph.
//!
//! The serving layer ([`crate::serve`]) splits the population into
//! contiguous user-id ranges. Each [`Shard`] owns its range's slice of the
//! fingerprint arena (cut with `ShfStore::slice_rows`, so profile updates
//! write only the owner's rows), the range's neighbour lists, the
//! reverse-adjacency index for the owned users, and their repair counters.
//! The [`ShardSet`] wraps the shards behind a [`DynamicKnn`]-shaped
//! repair API split into a **read-only planning half**
//! ([`ShardSet::plan_repair`], safe to fan out across threads over a
//! frozen set) and a **serial application half**
//! ([`ShardSet::apply_repair`], cheap `O(k)` list surgery), which is what
//! makes batched drains deterministic for any thread count.
//!
//! [`DynamicKnn`]: crate::dynamic::DynamicKnn

use crate::dynamic::{probe_seed, sorted_insert, sorted_remove};
use crate::graph::KnnGraph;
use crate::neighborlist::{NeighborList, Offer};
use goldfinger_core::hash::ItemHasher;
use goldfinger_core::kernels;
use goldfinger_core::shf::{jaccard_from_counts, ShfStore};
use goldfinger_core::topk::Scored;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One contiguous user-id range of the service: rows `lo .. lo + len` of
/// the global population. Neighbour and reverse-neighbour ids stored
/// inside a shard are **global**; only the vector indices are local.
#[derive(Debug, Clone)]
pub struct Shard {
    lo: u32,
    store: ShfStore,
    lists: Vec<NeighborList>,
    /// `rev[local]` = sorted global ids of users whose list contains
    /// `lo + local` (those users may live on any shard).
    rev: Vec<Vec<u32>>,
    /// Per-owned-user repair counters, mixed into probe seeds.
    repairs: Vec<u64>,
}

impl Shard {
    /// First global user id owned by this shard.
    pub fn lo(&self) -> u32 {
        self.lo
    }

    /// Number of users owned by this shard.
    pub fn len(&self) -> usize {
        self.lists.len()
    }

    /// True when the shard owns no users (never produced by
    /// [`ShardSet::partition`], but the type allows it).
    pub fn is_empty(&self) -> bool {
        self.lists.is_empty()
    }

    /// The owned slice of the fingerprint arena.
    pub fn store(&self) -> &ShfStore {
        &self.store
    }

    /// Neighbour list of local user `local` (entries hold global ids).
    pub fn list(&self, local: usize) -> &NeighborList {
        &self.lists[local]
    }

    /// Reverse neighbours (global ids, sorted) of local user `local`.
    pub fn reverse(&self, local: usize) -> &[u32] {
        &self.rev[local]
    }

    /// Folds `items` into the owned user's fingerprint in place and
    /// returns how many bits were newly set. This is the per-shard write
    /// path of a profile update: only the owner's arena slice is touched.
    pub fn apply_update<H: ItemHasher>(&mut self, local: usize, items: &[u32], hasher: &H) -> u32 {
        self.store.apply_delta(local as u32, items, hasher)
    }

    /// Applies a whole drain batch of `(local, items)` deltas to the
    /// owned arena slice in batch order (delta fingerprinting:
    /// `ShfStore::apply_deltas`) and returns the total bits newly set.
    pub fn apply_updates<H: ItemHasher + Sync>(
        &mut self,
        deltas: &[(u32, Vec<u32>)],
        hasher: &H,
    ) -> u32 {
        self.store.apply_deltas(deltas, hasher)
    }

    /// Returns the repair counter for `local` and advances it — one call
    /// per scheduled repair, so consecutive repairs of the same user draw
    /// distinct probe streams (see [`probe_seed`]).
    pub fn bump_repair(&mut self, local: usize) -> u64 {
        let c = self.repairs[local];
        self.repairs[local] += 1;
        c
    }
}

/// The planned outcome of repairing one user against a frozen
/// [`ShardSet`]: the user's rebuilt neighbour list plus every scored
/// candidate (for the symmetric offers). Produced by the parallel
/// read-only phase, consumed by the serial apply phase.
#[derive(Debug, Clone)]
pub struct Repair {
    /// The repaired user (global id).
    pub user: u32,
    /// Similarity evaluations this plan spent.
    pub evals: u64,
    fresh: NeighborList,
    scored: Vec<(u32, f64)>,
}

/// A full population partitioned into contiguous [`Shard`]s, with the
/// cross-shard repair operations of [`crate::dynamic::DynamicKnn`] split
/// into a parallel-safe planning half and a serial applying half.
#[derive(Debug, Clone)]
pub struct ShardSet {
    k: usize,
    n: usize,
    /// Users per shard (`ceil(n / shards)`); `owner(u) = u / per`.
    per: usize,
    shards: Vec<Shard>,
    /// Shards whose neighbour lists changed since [`ShardSet::take_dirty`]
    /// — the snapshot rebuild set.
    dirty: Vec<bool>,
}

impl ShardSet {
    /// Partitions a built graph and its fingerprint store into (at most)
    /// `shards` contiguous user-id ranges.
    ///
    /// # Panics
    /// Panics when the store and graph disagree on the population or the
    /// population is empty.
    pub fn partition(graph: &KnnGraph, store: &ShfStore, shards: usize) -> Self {
        let n = graph.n_users();
        assert!(n > 0, "cannot partition an empty population");
        assert_eq!(store.len(), n, "store/graph population mismatch");
        let per = n.div_ceil(shards.clamp(1, n));
        let n_shards = n.div_ceil(per);
        let mut out: Vec<Shard> = (0..n_shards)
            .map(|s| {
                let lo = s * per;
                let hi = ((s + 1) * per).min(n);
                let lists = (lo..hi)
                    .map(|u| {
                        let mut list = NeighborList::new(graph.k());
                        for sc in graph.neighbors(u as u32) {
                            list.insert(sc.user, sc.sim);
                        }
                        list
                    })
                    .collect();
                Shard {
                    lo: lo as u32,
                    store: store.slice_rows(lo, hi),
                    lists,
                    rev: vec![Vec::new(); hi - lo],
                    repairs: vec![0; hi - lo],
                }
            })
            .collect();
        // Second pass: the reverse index. `u` lists `v` → `v`'s owner
        // records `u`, wherever the two live.
        for u in 0..n as u32 {
            for sc in graph.neighbors(u) {
                let (s, l) = (sc.user as usize / per, sc.user as usize % per);
                out[s].rev[l].push(u);
            }
        }
        for shard in &mut out {
            for ids in &mut shard.rev {
                ids.sort_unstable();
            }
        }
        ShardSet {
            k: graph.k(),
            n,
            per,
            shards: out,
            dirty: vec![false; n_shards],
        }
    }

    /// Total number of users.
    pub fn n_users(&self) -> usize {
        self.n
    }

    /// Neighbourhood size.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Shard index owning global user `u`.
    pub fn owner(&self, u: u32) -> usize {
        u as usize / self.per
    }

    /// `u`'s index inside its owner shard.
    pub fn local(&self, u: u32) -> usize {
        u as usize % self.per
    }

    /// The shards, immutable (snapshot building, planning).
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// The shards, mutable — for the parallel per-shard update phase
    /// (each worker writes only its own shards' arena slices).
    pub fn shards_mut(&mut self) -> &mut [Shard] {
        &mut self.shards
    }

    /// Returns which shards' lists changed since the last call and
    /// resets the flags. [`ShardSet::apply_repair`] marks precisely the
    /// shards whose neighbour lists it mutated, so unchanged shards can
    /// reuse their published snapshot verbatim.
    pub fn take_dirty(&mut self) -> Vec<bool> {
        std::mem::replace(&mut self.dirty, vec![false; self.shards.len()])
    }

    /// Fingerprint similarity of two global users, computed straight from
    /// the owning shards' arena slices (cross-shard reads are plain
    /// immutable loads).
    pub fn similarity(&self, u: u32, v: u32) -> f64 {
        let (a, ca) = self.fp(u);
        let (b, cb) = self.fp(v);
        jaccard_from_counts(kernels::and_count(a, b), ca, cb)
    }

    fn fp(&self, u: u32) -> (&[u64], u32) {
        let shard = &self.shards[self.owner(u)];
        let l = self.local(u) as u32;
        (shard.store.fingerprint_words(l), shard.store.cardinality(l))
    }

    /// Current neighbours of `u`, sorted by decreasing similarity.
    pub fn neighbors(&self, u: u32) -> Vec<Scored> {
        self.shards[self.owner(u)].lists[self.local(u)].to_sorted()
    }

    /// Hyrec-style candidate set of `u`: neighbours, their neighbours,
    /// and the maintained reverse neighbours — `O(k² + |rev(u)|)`,
    /// independent of both the population and the shard count.
    pub fn candidate_set(&self, u: u32) -> Vec<u32> {
        let mut out: Vec<u32> = Vec::new();
        let nbrs: Vec<u32> = self.shards[self.owner(u)].lists[self.local(u)]
            .users()
            .collect();
        for v in nbrs {
            out.push(v);
            out.extend(self.shards[self.owner(v)].lists[self.local(v)].users());
        }
        out.extend_from_slice(&self.shards[self.owner(u)].rev[self.local(u)]);
        out.sort_unstable();
        out.dedup();
        out.retain(|&v| v != u);
        out
    }

    /// Read-only planning half of a repair: scores `u` against its
    /// candidate set plus `probes` random users (stream selected by
    /// `(seed, u, counter)`, see [`probe_seed`]) and returns the rebuilt
    /// list plus all scored pairs. Takes `&self` — many plans can run
    /// concurrently over a frozen set, and a plan depends only on that
    /// frozen state, never on sibling plans.
    pub fn plan_repair(&self, u: u32, counter: u64, probes: usize, seed: u64) -> Repair {
        let mut candidates = self.candidate_set(u);
        if probes > 0 && self.n > 1 {
            let mut rng = StdRng::seed_from_u64(probe_seed(seed, u, counter));
            for _ in 0..probes {
                let v = rng.gen_range(0..self.n) as u32;
                if v != u {
                    candidates.push(v);
                }
            }
            candidates.sort_unstable();
            candidates.dedup();
        }
        let mut fresh = NeighborList::new(self.k);
        let mut scored = Vec::with_capacity(candidates.len());
        for &v in &candidates {
            let s = self.similarity(u, v);
            fresh.insert(v, s);
            scored.push((v, s));
        }
        Repair {
            user: u,
            evals: scored.len() as u64,
            fresh,
            scored,
        }
    }

    /// Serial application half: installs a planned repair, mirroring
    /// [`crate::dynamic::DynamicKnn`]'s semantics — symmetric offers
    /// first (a member's changed similarity is updated **in place**, a
    /// non-member must beat the worst), then the rebuilt list, with the
    /// reverse index maintained through every membership change.
    pub fn apply_repair(&mut self, r: &Repair) {
        for &(v, s) in &r.scored {
            self.offer_entry(v, r.user, s);
        }
        self.replace_list(r.user, r.fresh.clone());
    }

    /// The symmetric half of a repair, cross-shard (see
    /// `DynamicKnn::offer_entry` for the downgrade rationale).
    fn offer_entry(&mut self, v: u32, u: u32, s: f64) {
        let (sv, lv) = (self.owner(v), self.local(v));
        if self.shards[sv].lists[lv].update_sim(u, s) {
            self.dirty[sv] = true;
            return;
        }
        match self.shards[sv].lists[lv].offer(u, s) {
            Offer::Added => {
                self.dirty[sv] = true;
                self.rev_insert(u, v);
            }
            Offer::Replaced(evicted) => {
                self.dirty[sv] = true;
                self.rev_insert(u, v);
                self.rev_remove(evicted, v);
            }
            Offer::Rejected | Offer::Duplicate => {}
        }
    }

    /// Replaces `u`'s whole list, routing every reverse-index delta to
    /// the affected user's owner shard.
    fn replace_list(&mut self, u: u32, fresh: NeighborList) {
        let (su, lu) = (self.owner(u), self.local(u));
        let old: Vec<u32> = self.shards[su].lists[lu].users().collect();
        for &w in &old {
            if !fresh.contains(w) {
                self.rev_remove(w, u);
            }
        }
        let added: Vec<u32> = fresh.users().filter(|w| !old.contains(w)).collect();
        for w in added {
            self.rev_insert(w, u);
        }
        self.shards[su].lists[lu] = fresh;
        self.dirty[su] = true;
    }

    /// Records "`w` lists `u`" on `u`'s owner.
    fn rev_insert(&mut self, u: u32, w: u32) {
        let (s, l) = (self.owner(u), self.local(u));
        sorted_insert(&mut self.shards[s].rev[l], w);
    }

    /// Drops "`w` lists `u`" from `u`'s owner.
    fn rev_remove(&mut self, u: u32, w: u32) {
        let (s, l) = (self.owner(u), self.local(u));
        sorted_remove(&mut self.shards[s].rev[l], w);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::BruteForce;
    use goldfinger_core::hash::DynHasher;
    use goldfinger_core::profile::ProfileStore;
    use goldfinger_core::shf::ShfParams;
    use goldfinger_core::similarity::ShfJaccard;

    fn fixture(clusters: u32) -> (KnnGraph, ShfStore, ShfParams<DynHasher>) {
        let mut lists = Vec::new();
        for c in 0..clusters {
            for u in 0..6u32 {
                let base = c * 1000;
                let mut items: Vec<u32> = (base..base + 15).collect();
                items.push(base + 100 + u);
                lists.push(items);
            }
        }
        let params = ShfParams::new(1024, DynHasher::default());
        let store = params.fingerprint_store(&ProfileStore::from_item_lists(lists));
        let graph = BruteForce::default()
            .build(&ShfJaccard::new(&store), 3)
            .graph;
        (graph, store, params)
    }

    fn rev_invariant(set: &ShardSet) {
        let mut expect = vec![Vec::new(); set.n_users()];
        for u in 0..set.n_users() as u32 {
            for v in set.shards()[set.owner(u)].lists[set.local(u)].users() {
                expect[v as usize].push(u);
            }
        }
        for ids in &mut expect {
            ids.sort_unstable();
        }
        for u in 0..set.n_users() as u32 {
            assert_eq!(
                set.shards()[set.owner(u)].reverse(set.local(u)),
                &expect[u as usize][..],
                "reverse index out of sync for user {u}"
            );
        }
    }

    #[test]
    fn partition_covers_the_population_and_preserves_the_graph() {
        let (graph, store, _) = fixture(3); // 18 users
        for shards in [1usize, 3, 4, 18, 99] {
            let set = ShardSet::partition(&graph, &store, shards);
            assert!(set.n_shards() <= 18);
            let total: usize = set.shards().iter().map(Shard::len).sum();
            assert_eq!(total, 18);
            for u in 0..18u32 {
                let s = &set.shards()[set.owner(u)];
                assert!(!s.is_empty());
                assert_eq!(
                    (u - s.lo()) as usize,
                    set.local(u),
                    "owner/local disagree for u={u}, shards={shards}"
                );
                assert_eq!(set.neighbors(u), graph.neighbors(u).to_vec());
                // The owned arena slice carries the user's exact row.
                assert_eq!(
                    s.store().fingerprint_words(set.local(u) as u32),
                    store.fingerprint_words(u)
                );
            }
            rev_invariant(&set);
        }
    }

    #[test]
    fn cross_shard_similarity_matches_the_unsharded_store() {
        let (graph, store, _) = fixture(2);
        let set = ShardSet::partition(&graph, &store, 4);
        let sim = ShfJaccard::new(&store);
        use goldfinger_core::similarity::Similarity;
        for u in 0..12u32 {
            for v in 0..12u32 {
                assert_eq!(set.similarity(u, v), sim.similarity(u, v));
            }
        }
    }

    #[test]
    fn plan_and_apply_mirror_dynamic_repairs() {
        // One planned repair applied to a sharded set must equal the same
        // repair on the monolithic DynamicKnn (same frozen input state).
        let (graph, store, _) = fixture(2);
        let mut set = ShardSet::partition(&graph, &store, 3);
        let mut dynamic = crate::dynamic::DynamicKnn::from_graph(&graph);
        let sim = ShfJaccard::new(&store);
        let plan = set.plan_repair(0, 0, 4, 42);
        assert!(plan.evals > 0);
        set.apply_repair(&plan);
        let evals = dynamic.repair_user_with_probes(0, &sim, 4, 42);
        assert_eq!(plan.evals, evals);
        for u in 0..12u32 {
            assert_eq!(set.neighbors(u), dynamic.neighbors(u), "user {u} diverged");
        }
        rev_invariant(&set);
    }

    #[test]
    fn apply_update_tracks_dirty_shards_and_fingerprints() {
        let (graph, store, params) = fixture(2);
        let mut set = ShardSet::partition(&graph, &store, 3);
        assert!(set.take_dirty().iter().all(|&d| !d), "clean at rest");
        // Fold new items into user 9's fingerprint on its owner shard.
        let (s, l) = (set.owner(9), set.local(9));
        let before = set.similarity(9, 0);
        let added =
            set.shards_mut()[s].apply_update(l, &(0..15).collect::<Vec<_>>(), params.hasher());
        assert!(added > 0);
        assert!(
            set.similarity(9, 0) > before,
            "update did not move similarity"
        );
        // Updates alone don't dirty lists; a repair does.
        assert!(set.take_dirty().iter().all(|&d| !d));
        let counter = set.shards_mut()[s].bump_repair(l);
        let plan = set.plan_repair(9, counter, 2, 7);
        set.apply_repair(&plan);
        let dirty = set.take_dirty();
        assert!(dirty[s], "owner shard must be rebuilt");
        rev_invariant(&set);
    }
}
