//! Instrumented similarity providers — the analytic substitute for the
//! paper's hardware-counter measurements (Table 5).
//!
//! The paper profiles L1 cache loads/stores with `perf`. Hardware counters
//! are unavailable here, so [`CountingSimilarity`] wraps any provider and
//! accumulates (a) the number of similarity evaluations and (b) the exact
//! bytes of profile payload those evaluations read, using each provider's
//! [`Similarity::bytes_per_eval`] model. Because L1 traffic on the
//! similarity path is a direct function of bytes touched, the *ratios*
//! between native and GoldFinger runs reproduce the paper's Table 5 shape.

use goldfinger_core::similarity::Similarity;
use std::sync::atomic::{AtomicU64, Ordering};

/// A provider wrapper counting evaluations and modelled memory traffic.
///
/// Thread-safe: counters are relaxed atomics (exact totals, no ordering
/// requirements).
#[derive(Debug)]
pub struct CountingSimilarity<'a, S> {
    inner: &'a S,
    calls: AtomicU64,
    bytes: AtomicU64,
}

impl<'a, S: Similarity> CountingSimilarity<'a, S> {
    /// Wraps a provider.
    pub fn new(inner: &'a S) -> Self {
        CountingSimilarity {
            inner,
            calls: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    /// Snapshot of the accumulated counters.
    pub fn traffic(&self) -> MemoryTraffic {
        MemoryTraffic {
            calls: self.calls.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
        }
    }

    /// Resets both counters to zero.
    pub fn reset(&self) {
        self.calls.store(0, Ordering::Relaxed);
        self.bytes.store(0, Ordering::Relaxed);
    }
}

impl<S: Similarity> Similarity for CountingSimilarity<'_, S> {
    #[inline]
    fn n_users(&self) -> usize {
        self.inner.n_users()
    }

    #[inline]
    fn similarity(&self, u: u32, v: u32) -> f64 {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.bytes
            .fetch_add(self.inner.bytes_per_eval(u, v), Ordering::Relaxed);
        self.inner.similarity(u, v)
    }

    #[inline]
    fn bytes_per_eval(&self, u: u32, v: u32) -> u64 {
        self.inner.bytes_per_eval(u, v)
    }
}

/// Accumulated similarity-path memory traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoryTraffic {
    /// Number of similarity evaluations.
    pub calls: u64,
    /// Modelled bytes of profile payload read by those evaluations.
    pub bytes: u64,
}

impl MemoryTraffic {
    /// Mean bytes per evaluation (0 when nothing ran).
    pub fn bytes_per_call(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.bytes as f64 / self.calls as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::BruteForce;
    use goldfinger_core::profile::ProfileStore;
    use goldfinger_core::shf::ShfParams;
    use goldfinger_core::similarity::{ExplicitJaccard, ShfJaccard};

    fn profiles() -> ProfileStore {
        ProfileStore::from_item_lists(vec![
            (0..100).collect(),
            (50..150).collect(),
            (0..80).collect(),
        ])
    }

    #[test]
    fn counts_every_call_and_its_bytes() {
        let p = profiles();
        let sim = ExplicitJaccard::new(&p);
        let counting = CountingSimilarity::new(&sim);
        let _ = counting.similarity(0, 1);
        let _ = counting.similarity(0, 2);
        let t = counting.traffic();
        assert_eq!(t.calls, 2);
        assert_eq!(t.bytes, sim.bytes_per_eval(0, 1) + sim.bytes_per_eval(0, 2));
        counting.reset();
        assert_eq!(counting.traffic(), MemoryTraffic::default());
    }

    #[test]
    fn wrapped_values_are_unchanged() {
        let p = profiles();
        let sim = ExplicitJaccard::new(&p);
        let counting = CountingSimilarity::new(&sim);
        assert_eq!(counting.similarity(0, 1), sim.similarity(0, 1));
        assert_eq!(counting.n_users(), 3);
    }

    #[test]
    fn goldfinger_traffic_is_lower_than_native_for_these_profiles() {
        // The Table 5 claim in miniature: same algorithm, same eval count,
        // far fewer bytes via fingerprints.
        let p = profiles();
        let store = ShfParams::default().fingerprint_store(&p);

        let native = ExplicitJaccard::new(&p);
        let counted_native = CountingSimilarity::new(&native);
        let _ = BruteForce::default().build(&counted_native, 2);

        let gf = ShfJaccard::new(&store);
        let counted_gf = CountingSimilarity::new(&gf);
        let _ = BruteForce::default().build(&counted_gf, 2);

        let tn = counted_native.traffic();
        let tg = counted_gf.traffic();
        assert_eq!(tn.calls, tg.calls);
        // 100-item profiles: ~2·100·4 = 800B native vs 2·(128+4) = 264B GF.
        assert!(tg.bytes < tn.bytes, "{} vs {}", tg.bytes, tn.bytes);
        assert!(tg.bytes_per_call() < tn.bytes_per_call());
    }
}
