//! Hyrec (Boutet, Frey, Guerraoui, Kermarrec & Patra, Middleware 2014).
//!
//! Like NNDescent, Hyrec refines a random graph with the
//! neighbour-of-a-neighbour heuristic, but iterates differently: at each
//! iteration, every user `u` is compared against its neighbours' neighbours
//! (rather than joining pairs among `u`'s neighbours), and the current graph
//! is *not* reversed. Terminates when fewer than `δ·k·n` updates occur or
//! after `max_iterations`.
//!
//! The iterate/converge/finalize scaffolding lives in
//! [`RefineEngine`](crate::engine::RefineEngine); this module only
//! contributes the Hyrec [`JoinStrategy`]: a start-of-iteration snapshot of
//! the neighbour ids, scanned two hops out with a [`VisitStamp`] guarding
//! against duplicate evaluations.

use crate::engine::{JoinStrategy, Joiner, ListsView, RefineEngine};
use crate::graph::KnnResult;
use goldfinger_core::similarity::Similarity;
use goldfinger_core::visit::VisitStamp;
use goldfinger_obs::{BuildObserver, NoopObserver};
use rand::rngs::StdRng;

/// Hyrec parameters. Defaults follow the paper's evaluation (§3.3):
/// `δ = 0.001`, at most 30 iterations.
#[derive(Debug, Clone, Copy)]
pub struct Hyrec {
    /// Termination threshold: stop when an iteration performs fewer than
    /// `delta · k · n` list updates.
    pub delta: f64,
    /// Hard cap on refinement iterations.
    pub max_iterations: u32,
    /// RNG seed for the initial random graph.
    pub seed: u64,
    /// Worker threads for the candidate scans (1 = sequential and fully
    /// deterministic; >1 matches the paper's multi-threaded runs but makes
    /// the update interleaving — and thus tie outcomes — nondeterministic).
    /// The scan dispatches once per refinement iteration, so installing a
    /// `goldfinger_core::pool::Pool` replaces a spawn/join round-trip per
    /// iteration with a broadcast to already-parked workers.
    pub threads: usize,
}

impl Default for Hyrec {
    fn default() -> Self {
        Hyrec {
            delta: 0.001,
            max_iterations: 30,
            seed: 0x4E_C0,
            threads: 1,
        }
    }
}

impl Hyrec {
    /// Builds an approximate KNN graph over the provider.
    ///
    /// # Panics
    /// Panics if `k == 0` or `delta` is negative.
    pub fn build<S: Similarity + ?Sized>(&self, sim: &S, k: usize) -> KnnResult {
        self.build_observed(sim, k, &NoopObserver)
    }

    /// Builds the graph, reporting progress to `obs`: an `IterationEvent`
    /// per refinement round (iteration 0 covers the random-graph seeding)
    /// carrying the evaluations performed, the neighbour-list updates and
    /// the `δ·k·n` termination threshold, plus spans for the snapshot and
    /// candidate-scan phases. Observation never changes the output; with
    /// the default [`NoopObserver`] the hooks compile to nothing.
    ///
    /// # Panics
    /// Panics if `k == 0` or `delta` is negative.
    pub fn build_observed<S: Similarity + ?Sized, O: BuildObserver>(
        &self,
        sim: &S,
        k: usize,
        obs: &O,
    ) -> KnnResult {
        RefineEngine {
            delta: self.delta,
            max_iterations: self.max_iterations,
            seed: self.seed,
            threads: self.threads,
        }
        .run(sim, k, self, obs)
    }
}

impl JoinStrategy for Hyrec {
    /// Snapshot of every user's neighbour ids as the iteration starts:
    /// Hyrec explores the graph as it stood, not as it mutates.
    type Plan = Vec<Vec<u32>>;
    /// Visited stamp plus a candidate buffer for the batched join.
    type Scratch = (VisitStamp, Vec<u32>);

    fn candidates(&self, _k: usize, lists: &mut ListsView<'_>, _rng: &mut StdRng) -> Self::Plan {
        (0..lists.len())
            .map(|u| lists.with(u, |l| l.users().collect()))
            .collect()
    }

    fn scratch(&self, n: usize) -> Self::Scratch {
        (VisitStamp::new(n), Vec::new())
    }

    fn join_user<J: Joiner>(
        &self,
        snapshot: &Self::Plan,
        u: usize,
        (stamp, candidates): &mut Self::Scratch,
        joiner: &mut J,
    ) {
        stamp.next_round();
        stamp.mark(u); // never compare u with itself
        for &v in &snapshot[u] {
            stamp.mark(v as usize); // already a neighbour: skip
        }
        // Dedup the two-hop frontier first, then score it as one batch
        // against u — same candidates in the same order as the nested
        // per-pair loop, but through the gather kernel.
        candidates.clear();
        for &v in &snapshot[u] {
            for &w in &snapshot[v as usize] {
                if stamp.mark(w as usize) {
                    candidates.push(w);
                }
            }
        }
        joiner.join_batch(u as u32, candidates);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use goldfinger_core::profile::ProfileStore;
    use goldfinger_core::similarity::ExplicitJaccard;

    fn clustered(n_per: usize) -> ProfileStore {
        let mut lists = Vec::new();
        for u in 0..n_per {
            let mut items: Vec<u32> = (0..20).collect();
            items.push(200 + u as u32);
            lists.push(items);
        }
        for u in 0..n_per {
            let mut items: Vec<u32> = (100..120).collect();
            items.push(300 + u as u32);
            lists.push(items);
        }
        ProfileStore::from_item_lists(lists)
    }

    #[test]
    fn recovers_cluster_structure() {
        let profiles = clustered(10);
        let sim = ExplicitJaccard::new(&profiles);
        let result = Hyrec::default().build(&sim, 5);
        for u in 0..20u32 {
            for s in result.graph.neighbors(u) {
                assert_eq!(s.user < 10, u < 10, "user {u} -> {}", s.user);
            }
        }
    }

    #[test]
    fn is_deterministic_for_a_seed() {
        let profiles = clustered(8);
        let sim = ExplicitJaccard::new(&profiles);
        let a = Hyrec::default().build(&sim, 4);
        let b = Hyrec::default().build(&sim, 4);
        for u in 0..16u32 {
            assert_eq!(a.graph.neighbors(u), b.graph.neighbors(u));
        }
    }

    #[test]
    fn scans_less_than_brute_force_on_larger_inputs() {
        // Greedy search only pays off when n ≫ k²: 800 users, k = 5.
        let mut lists = Vec::new();
        for c in 0..40u32 {
            for u in 0..20u32 {
                let mut items: Vec<u32> = (c * 50..c * 50 + 15).collect();
                items.push(10_000 + c * 100 + u);
                lists.push(items);
            }
        }
        let profiles = ProfileStore::from_item_lists(lists);
        let sim = ExplicitJaccard::new(&profiles);
        let result = Hyrec::default().build(&sim, 5);
        let brute = 800u64 * 799 / 2;
        assert!(
            result.stats.similarity_evals < brute,
            "{} vs {}",
            result.stats.similarity_evals,
            brute
        );
    }

    #[test]
    fn quality_close_to_exact_on_clusters() {
        use crate::brute::BruteForce;
        use crate::metrics::average_similarity;
        let profiles = clustered(12);
        let sim = ExplicitJaccard::new(&profiles);
        let exact = BruteForce::default().build(&sim, 5);
        let approx = Hyrec::default().build(&sim, 5);
        let q = average_similarity(&approx.graph, &sim) / average_similarity(&exact.graph, &sim);
        assert!(q > 0.9, "quality = {q}");
    }

    #[test]
    fn parallel_build_matches_sequential_quality() {
        use crate::brute::BruteForce;
        use crate::metrics::quality;
        let profiles = clustered(15);
        let sim = ExplicitJaccard::new(&profiles);
        let exact = BruteForce::default().build(&sim, 5);
        let seq = Hyrec::default().build(&sim, 5);
        let par = Hyrec {
            threads: 4,
            ..Hyrec::default()
        }
        .build(&sim, 5);
        let q_seq = quality(&seq.graph, &exact.graph, &sim);
        let q_par = quality(&par.graph, &exact.graph, &sim);
        assert!(
            q_par > q_seq - 0.05,
            "parallel {q_par} vs sequential {q_seq}"
        );
        // Structural invariants hold under concurrency.
        for u in 0..par.graph.n_users() as u32 {
            let neigh = par.graph.neighbors(u);
            assert!(neigh.len() <= 5);
            assert!(neigh.iter().all(|s| s.user != u));
            let mut ids: Vec<u32> = neigh.iter().map(|s| s.user).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), neigh.len());
        }
    }

    #[test]
    fn max_iterations_respected() {
        let profiles = clustered(10);
        let sim = ExplicitJaccard::new(&profiles);
        let result = Hyrec {
            max_iterations: 2,
            ..Hyrec::default()
        }
        .build(&sim, 5);
        assert!(result.stats.iterations <= 2);
    }
}
