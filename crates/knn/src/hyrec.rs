//! Hyrec (Boutet, Frey, Guerraoui, Kermarrec & Patra, Middleware 2014).
//!
//! Like NNDescent, Hyrec refines a random graph with the
//! neighbour-of-a-neighbour heuristic, but iterates differently: at each
//! iteration, every user `u` is compared against its neighbours' neighbours
//! (rather than joining pairs among `u`'s neighbours), and the current graph
//! is *not* reversed. Terminates when fewer than `δ·k·n` updates occur or
//! after `max_iterations`.

use crate::graph::{BuildStats, KnnGraph, KnnResult};
use crate::neighborlist::{random_lists, NeighborList};
use goldfinger_core::similarity::Similarity;
use goldfinger_obs::{BuildObserver, IterationEvent, NoopObserver, Phase};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// Hyrec parameters. Defaults follow the paper's evaluation (§3.3):
/// `δ = 0.001`, at most 30 iterations.
#[derive(Debug, Clone, Copy)]
pub struct Hyrec {
    /// Termination threshold: stop when an iteration performs fewer than
    /// `delta · k · n` list updates.
    pub delta: f64,
    /// Hard cap on refinement iterations.
    pub max_iterations: u32,
    /// RNG seed for the initial random graph.
    pub seed: u64,
    /// Worker threads for the candidate scans (1 = sequential and fully
    /// deterministic; >1 matches the paper's multi-threaded runs but makes
    /// the update interleaving — and thus tie outcomes — nondeterministic).
    /// The scan dispatches once per refinement iteration, so installing a
    /// `goldfinger_core::pool::Pool` replaces a spawn/join round-trip per
    /// iteration with a broadcast to already-parked workers.
    pub threads: usize,
}

impl Default for Hyrec {
    fn default() -> Self {
        Hyrec {
            delta: 0.001,
            max_iterations: 30,
            seed: 0x4E_C0,
            threads: 1,
        }
    }
}

impl Hyrec {
    /// Builds an approximate KNN graph over the provider.
    ///
    /// # Panics
    /// Panics if `k == 0` or `delta` is negative.
    pub fn build<S: Similarity>(&self, sim: &S, k: usize) -> KnnResult {
        self.build_observed(sim, k, &NoopObserver)
    }

    /// Builds the graph, reporting progress to `obs`: an [`IterationEvent`]
    /// per refinement round (iteration 0 covers the random-graph seeding)
    /// carrying the evaluations performed, the neighbour-list updates and
    /// the `δ·k·n` termination threshold, plus spans for the snapshot and
    /// candidate-scan phases. Observation never changes the output; with
    /// the default [`NoopObserver`] the hooks compile to nothing.
    ///
    /// # Panics
    /// Panics if `k == 0` or `delta` is negative.
    pub fn build_observed<S: Similarity, O: BuildObserver>(
        &self,
        sim: &S,
        k: usize,
        obs: &O,
    ) -> KnnResult {
        if self.threads > 1 {
            return self.build_parallel(sim, k, obs);
        }
        assert!(k > 0, "k must be positive");
        assert!(self.delta >= 0.0, "delta must be non-negative");
        let n = sim.n_users();
        let start = Instant::now();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut evals = 0u64;
        let mut lists = random_lists(sim, k, &mut rng, &mut evals);
        if O::ENABLED {
            obs.on_iteration(IterationEvent {
                iteration: 0,
                similarity_evals: evals,
                pruned_evals: 0,
                updates: 0,
                threshold: 0.0,
                wall: start.elapsed(),
            });
        }
        let mut iterations = 0u32;

        // Visited stamps avoid repeated similarity computations within one
        // user's candidate scan without clearing a bitmap every time.
        let mut stamp = vec![0u32; n];
        let mut round = 0u32;

        while iterations < self.max_iterations {
            iterations += 1;
            let iter_start = O::ENABLED.then(Instant::now);
            let evals_before = evals;
            let mut updates = 0u64;

            // Snapshot the neighbour ids: Hyrec explores the graph as it
            // stood at the start of the iteration.
            let snapshot: Vec<Vec<u32>> = lists.iter().map(|l| l.users().collect()).collect();
            if let Some(t) = iter_start {
                obs.on_span(Phase::CandidateGeneration, t.elapsed());
            }
            let scan_start = O::ENABLED.then(Instant::now);

            for u in 0..n {
                round += 1;
                stamp[u] = round; // never compare u with itself
                for &v in &snapshot[u] {
                    stamp[v as usize] = round; // already a neighbour: skip
                }
                for &v in &snapshot[u] {
                    for &w in &snapshot[v as usize] {
                        let w_us = w as usize;
                        if stamp[w_us] == round {
                            continue;
                        }
                        stamp[w_us] = round;
                        evals += 1;
                        let s = sim.similarity(u as u32, w);
                        if lists[u].insert(w, s) {
                            updates += 1;
                        }
                        if lists[w_us].insert(u as u32, s) {
                            updates += 1;
                        }
                    }
                }
            }

            if O::ENABLED {
                if let Some(t) = scan_start {
                    obs.on_span(Phase::Join, t.elapsed());
                }
                obs.on_iteration(IterationEvent {
                    iteration: iterations,
                    similarity_evals: evals - evals_before,
                    pruned_evals: 0,
                    updates,
                    threshold: self.delta * k as f64 * n as f64,
                    wall: iter_start.map_or(Duration::ZERO, |t| t.elapsed()),
                });
            }
            if (updates as f64) < self.delta * k as f64 * n as f64 {
                break;
            }
        }

        let merge_start = O::ENABLED.then(Instant::now);
        let neighbors = lists.iter().map(NeighborList::to_sorted).collect();
        if let Some(t) = merge_start {
            obs.on_span(Phase::Merge, t.elapsed());
        }
        KnnResult {
            graph: KnnGraph::from_lists(k, neighbors),
            stats: BuildStats {
                similarity_evals: evals,
                pruned_evals: 0,
                iterations,
                wall: start.elapsed(),
                prep_wall: Duration::ZERO,
            },
        }
    }

    /// Multi-threaded variant: pivots are scanned in parallel, neighbour
    /// lists are guarded by per-node locks (one lock held at a time — no
    /// nesting, no deadlock). The resulting graph is equivalent in quality
    /// but not bit-identical across runs, since update interleaving is
    /// scheduler-dependent.
    fn build_parallel<S: Similarity, O: BuildObserver>(
        &self,
        sim: &S,
        k: usize,
        obs: &O,
    ) -> KnnResult {
        use goldfinger_core::parallel::par_for_each_range;
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Mutex;

        assert!(k > 0, "k must be positive");
        assert!(self.delta >= 0.0, "delta must be non-negative");
        let n = sim.n_users();
        let start = Instant::now();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut init_evals = 0u64;
        let lists = random_lists(sim, k, &mut rng, &mut init_evals);
        let locks: Vec<Mutex<NeighborList>> = lists.into_iter().map(Mutex::new).collect();
        let evals = AtomicU64::new(init_evals);
        if O::ENABLED {
            obs.on_iteration(IterationEvent {
                iteration: 0,
                similarity_evals: init_evals,
                pruned_evals: 0,
                updates: 0,
                threshold: 0.0,
                wall: start.elapsed(),
            });
        }
        let mut iterations = 0u32;

        while iterations < self.max_iterations {
            iterations += 1;
            let iter_start = O::ENABLED.then(Instant::now);
            let evals_before = evals.load(Ordering::Relaxed);
            let snapshot: Vec<Vec<u32>> = locks
                .iter()
                .map(|l| l.lock().unwrap().users().collect())
                .collect();
            if let Some(t) = iter_start {
                obs.on_span(Phase::CandidateGeneration, t.elapsed());
            }
            let scan_start = O::ENABLED.then(Instant::now);
            let updates = AtomicU64::new(0);
            par_for_each_range(n, self.threads, |_, lo, hi| {
                // Per-thread visited stamps.
                let mut stamp = vec![0u32; n];
                let mut round = 0u32;
                for u in lo..hi {
                    round += 1;
                    stamp[u] = round;
                    for &v in &snapshot[u] {
                        stamp[v as usize] = round;
                    }
                    for &v in &snapshot[u] {
                        for &w in &snapshot[v as usize] {
                            let w_us = w as usize;
                            if stamp[w_us] == round {
                                continue;
                            }
                            stamp[w_us] = round;
                            evals.fetch_add(1, Ordering::Relaxed);
                            let s = sim.similarity(u as u32, w);
                            let mut changed = 0u64;
                            if locks[u].lock().unwrap().insert(w, s) {
                                changed += 1;
                            }
                            if locks[w_us].lock().unwrap().insert(u as u32, s) {
                                changed += 1;
                            }
                            if changed > 0 {
                                updates.fetch_add(changed, Ordering::Relaxed);
                            }
                        }
                    }
                }
            });
            if O::ENABLED {
                if let Some(t) = scan_start {
                    obs.on_span(Phase::Join, t.elapsed());
                }
                obs.on_iteration(IterationEvent {
                    iteration: iterations,
                    similarity_evals: evals.load(Ordering::Relaxed) - evals_before,
                    pruned_evals: 0,
                    updates: updates.load(Ordering::Relaxed),
                    threshold: self.delta * k as f64 * n as f64,
                    wall: iter_start.map_or(Duration::ZERO, |t| t.elapsed()),
                });
            }
            if (updates.load(Ordering::Relaxed) as f64) < self.delta * k as f64 * n as f64 {
                break;
            }
        }

        let merge_start = O::ENABLED.then(Instant::now);
        let neighbors = locks
            .iter()
            .map(|l| l.lock().unwrap().to_sorted())
            .collect();
        if let Some(t) = merge_start {
            obs.on_span(Phase::Merge, t.elapsed());
        }
        KnnResult {
            graph: KnnGraph::from_lists(k, neighbors),
            stats: BuildStats {
                similarity_evals: evals.load(Ordering::Relaxed),
                pruned_evals: 0,
                iterations,
                wall: start.elapsed(),
                prep_wall: Duration::ZERO,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use goldfinger_core::profile::ProfileStore;
    use goldfinger_core::similarity::ExplicitJaccard;

    fn clustered(n_per: usize) -> ProfileStore {
        let mut lists = Vec::new();
        for u in 0..n_per {
            let mut items: Vec<u32> = (0..20).collect();
            items.push(200 + u as u32);
            lists.push(items);
        }
        for u in 0..n_per {
            let mut items: Vec<u32> = (100..120).collect();
            items.push(300 + u as u32);
            lists.push(items);
        }
        ProfileStore::from_item_lists(lists)
    }

    #[test]
    fn recovers_cluster_structure() {
        let profiles = clustered(10);
        let sim = ExplicitJaccard::new(&profiles);
        let result = Hyrec::default().build(&sim, 5);
        for u in 0..20u32 {
            for s in result.graph.neighbors(u) {
                assert_eq!(s.user < 10, u < 10, "user {u} -> {}", s.user);
            }
        }
    }

    #[test]
    fn is_deterministic_for_a_seed() {
        let profiles = clustered(8);
        let sim = ExplicitJaccard::new(&profiles);
        let a = Hyrec::default().build(&sim, 4);
        let b = Hyrec::default().build(&sim, 4);
        for u in 0..16u32 {
            assert_eq!(a.graph.neighbors(u), b.graph.neighbors(u));
        }
    }

    #[test]
    fn scans_less_than_brute_force_on_larger_inputs() {
        // Greedy search only pays off when n ≫ k²: 800 users, k = 5.
        let mut lists = Vec::new();
        for c in 0..40u32 {
            for u in 0..20u32 {
                let mut items: Vec<u32> = (c * 50..c * 50 + 15).collect();
                items.push(10_000 + c * 100 + u);
                lists.push(items);
            }
        }
        let profiles = ProfileStore::from_item_lists(lists);
        let sim = ExplicitJaccard::new(&profiles);
        let result = Hyrec::default().build(&sim, 5);
        let brute = 800u64 * 799 / 2;
        assert!(
            result.stats.similarity_evals < brute,
            "{} vs {}",
            result.stats.similarity_evals,
            brute
        );
    }

    #[test]
    fn quality_close_to_exact_on_clusters() {
        use crate::brute::BruteForce;
        use crate::metrics::average_similarity;
        let profiles = clustered(12);
        let sim = ExplicitJaccard::new(&profiles);
        let exact = BruteForce::default().build(&sim, 5);
        let approx = Hyrec::default().build(&sim, 5);
        let q = average_similarity(&approx.graph, &sim) / average_similarity(&exact.graph, &sim);
        assert!(q > 0.9, "quality = {q}");
    }

    #[test]
    fn parallel_build_matches_sequential_quality() {
        use crate::brute::BruteForce;
        use crate::metrics::quality;
        let profiles = clustered(15);
        let sim = ExplicitJaccard::new(&profiles);
        let exact = BruteForce::default().build(&sim, 5);
        let seq = Hyrec::default().build(&sim, 5);
        let par = Hyrec {
            threads: 4,
            ..Hyrec::default()
        }
        .build(&sim, 5);
        let q_seq = quality(&seq.graph, &exact.graph, &sim);
        let q_par = quality(&par.graph, &exact.graph, &sim);
        assert!(
            q_par > q_seq - 0.05,
            "parallel {q_par} vs sequential {q_seq}"
        );
        // Structural invariants hold under concurrency.
        for u in 0..par.graph.n_users() as u32 {
            let neigh = par.graph.neighbors(u);
            assert!(neigh.len() <= 5);
            assert!(neigh.iter().all(|s| s.user != u));
            let mut ids: Vec<u32> = neigh.iter().map(|s| s.user).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), neigh.len());
        }
    }

    #[test]
    fn max_iterations_respected() {
        let profiles = clustered(10);
        let sim = ExplicitJaccard::new(&profiles);
        let result = Hyrec {
            max_iterations: 2,
            ..Hyrec::default()
        }
        .build(&sim, 5);
        assert!(result.stats.iterations <= 2);
    }
}
