//! The builder registry: every construction algorithm, enumerable by name.
//!
//! Harnesses that want to run "all algorithms" — the bench workloads, the
//! CLI, the comparison example — iterate [`all`] (or look one up with
//! [`get`]) and instantiate through [`BuilderSpec::instantiate`], which
//! applies the paper's evaluation parameters (§3.3: `δ = 0.001`, at most 30
//! refinement iterations, 10 LSH tables) with the caller's seed and thread
//! count. No caller needs a per-algorithm match arm; adding a builder means
//! implementing [`KnnBuilder`](crate::builder::KnnBuilder) and appending a
//! [`BuilderSpec`] here.

use crate::brute::BruteForce;
use crate::builder::ErasedBuilder;
use crate::cluster::Cluster;
use crate::hyrec::Hyrec;
use crate::kiff::Kiff;
use crate::lsh::Lsh;
use crate::nndescent::NNDescent;

/// Caller-chosen knobs applied at instantiation; everything else is fixed
/// to the paper's parameters by the registry entries.
#[derive(Debug, Clone, Copy)]
pub struct BuilderConfig {
    /// RNG seed for builders that draw randomness (random-graph init,
    /// sampling, LSH permutations).
    pub seed: u64,
    /// Worker threads (1 = serial).
    pub threads: usize,
}

impl Default for BuilderConfig {
    fn default() -> Self {
        BuilderConfig {
            seed: 42,
            threads: 1,
        }
    }
}

/// One registered construction algorithm.
pub struct BuilderSpec {
    /// Display name, as printed in the paper's tables.
    pub name: &'static str,
    /// Whether the algorithm is part of the paper's Table 4 evaluation
    /// (KIFF is related work, available for extended comparisons).
    pub in_paper: bool,
    make: fn(&BuilderConfig) -> Box<dyn ErasedBuilder>,
}

impl BuilderSpec {
    /// Creates the builder with the paper's parameters and `cfg`'s seed and
    /// thread count.
    pub fn instantiate(&self, cfg: &BuilderConfig) -> Box<dyn ErasedBuilder> {
        (self.make)(cfg)
    }
}

static REGISTRY: [BuilderSpec; 6] = [
    BuilderSpec {
        name: "Brute Force",
        in_paper: true,
        make: |cfg| {
            Box::new(BruteForce {
                threads: cfg.threads,
                ..BruteForce::default()
            })
        },
    },
    BuilderSpec {
        name: "Hyrec",
        in_paper: true,
        make: |cfg| {
            Box::new(Hyrec {
                delta: 0.001,
                max_iterations: 30,
                seed: cfg.seed,
                threads: cfg.threads,
            })
        },
    },
    BuilderSpec {
        name: "NNDescent",
        in_paper: true,
        make: |cfg| {
            Box::new(NNDescent {
                delta: 0.001,
                max_iterations: 30,
                sample_rate: 1.0,
                seed: cfg.seed,
                threads: cfg.threads,
            })
        },
    },
    BuilderSpec {
        name: "LSH",
        in_paper: true,
        make: |cfg| {
            Box::new(Lsh {
                tables: 10,
                seed: cfg.seed,
                threads: cfg.threads,
            })
        },
    },
    BuilderSpec {
        name: "KIFF",
        in_paper: false,
        make: |_cfg| {
            Box::new(Kiff {
                candidate_factor: 4,
                max_item_degree: None,
            })
        },
    },
    BuilderSpec {
        name: "Cluster",
        in_paper: false,
        // Everything but seed and threads comes from `Cluster::default()`,
        // so harnesses (exp_table4's layout extra, the sweep bench) can
        // reconstruct the registry configuration from the same source.
        make: |cfg| {
            Box::new(Cluster {
                seed: cfg.seed,
                threads: cfg.threads,
                ..Cluster::default()
            })
        },
    },
];

/// Every registered builder, in the paper's table order (KIFF last).
pub fn all() -> &'static [BuilderSpec] {
    &REGISTRY
}

/// Looks a builder up by name, case-insensitively and ignoring spaces,
/// dashes and underscores; `"brute"` is accepted as a shorthand for
/// `"Brute Force"`.
///
/// An unknown name comes back as an error listing every registered
/// spelling, so CLI typos are self-diagnosing instead of forcing a source
/// dive.
pub fn get(name: &str) -> Result<&'static BuilderSpec, String> {
    let needle: String = name
        .chars()
        .filter(|c| !matches!(c, ' ' | '-' | '_'))
        .flat_map(char::to_lowercase)
        .collect();
    let found = if needle.is_empty() {
        None
    } else {
        REGISTRY.iter().find(|spec| {
            let canon: String = spec
                .name
                .chars()
                .filter(|c| *c != ' ')
                .flat_map(char::to_lowercase)
                .collect();
            canon == needle || (needle == "brute" && spec.name == "Brute Force")
        })
    };
    found.ok_or_else(|| {
        let names: Vec<&str> = REGISTRY.iter().map(|s| s.name).collect();
        format!(
            "unknown builder {name:?}; registered: {} \
             (case, spaces, dashes and underscores are ignored; \
             \"brute\" works for \"Brute Force\")",
            names.join(", ")
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_accepts_cli_spellings() {
        for (spelling, expected) in [
            ("brute", "Brute Force"),
            ("bruteforce", "Brute Force"),
            ("Brute Force", "Brute Force"),
            ("brute-force", "Brute Force"),
            ("hyrec", "Hyrec"),
            ("NNDescent", "NNDescent"),
            ("nn_descent", "NNDescent"),
            ("lsh", "LSH"),
            ("kiff", "KIFF"),
            ("cluster", "Cluster"),
            ("Cluster", "Cluster"),
        ] {
            let spec = get(spelling).unwrap_or_else(|e| panic!("{spelling}: {e}"));
            assert_eq!(spec.name, expected, "{spelling}");
        }
    }

    #[test]
    fn unknown_names_list_the_registered_spellings() {
        for bogus in ["louvain", ""] {
            let err = match get(bogus) {
                Ok(spec) => panic!("{bogus:?} resolved to {}", spec.name),
                Err(e) => e,
            };
            assert!(err.contains("unknown builder"), "{err}");
            for name in [
                "Brute Force",
                "Hyrec",
                "NNDescent",
                "LSH",
                "KIFF",
                "Cluster",
            ] {
                assert!(err.contains(name), "{bogus:?}: error omits {name}: {err}");
            }
        }
    }

    #[test]
    fn registry_lists_the_paper_algorithms_first() {
        let names: Vec<&str> = all().iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            [
                "Brute Force",
                "Hyrec",
                "NNDescent",
                "LSH",
                "KIFF",
                "Cluster"
            ]
        );
        assert!(all()[..4].iter().all(|s| s.in_paper));
        assert!(all()[4..].iter().all(|s| !s.in_paper));
    }

    #[test]
    fn instantiation_applies_seed_and_threads() {
        let cfg = BuilderConfig {
            seed: 7,
            threads: 3,
        };
        for spec in all() {
            let b = spec.instantiate(&cfg);
            assert_eq!(b.name(), spec.name);
            // Greedy refiners are nondeterministic at 3 threads; the rest
            // are bit-identical for any thread count.
            let greedy = spec.name == "Hyrec" || spec.name == "NNDescent";
            assert_eq!(b.deterministic(), !greedy);
            let wants_profiles =
                spec.name == "LSH" || spec.name == "KIFF" || spec.name == "Cluster";
            assert_eq!(b.needs_profiles(), wants_profiles);
        }
    }
}
