//! Compact CSR graph forms: the two-array in-memory layout and the `GFCS`
//! spill-segment format with delta-varint id compression.
//!
//! [`KnnGraph`] keeps edges as `Scored { sim: f64, user: u32 }` — 16 bytes
//! per edge with padding — because every digest-pinned consumer compares
//! exact `f64` similarities. This module holds the representations for
//! when that is too big:
//!
//! - [`CompactGraph`]: ids (`u32`) and sims (`f32`) in two flat arrays
//!   plus offsets — 8 bytes per edge, cutting a resident graph in half.
//!   Converting to it rounds similarities to `f32`, so it is for
//!   memory-constrained serving, **not** for digest-pinned paths.
//! - `GFCS` segments: the serialized form of a contiguous user range of a
//!   graph, used by the out-of-core build to spill finished shards.
//!   Neighbour ids are delta-encoded in list order (zigzag + varint —
//!   LSH neighbourhoods are id-clustered, so deltas are short) and
//!   similarities are either exact `f64` (the default: a spilled shard
//!   stitches back **bit-identically**) or compact `f32`.
//!
//! ```text
//! "GFCS" | u8 version | u8 flags | u16 0 | u32 k | u64 user_lo | u64 n
//! per user: uvarint degree | degree × zigzag-uvarint id delta
//!         | degree × (f64 | f32) sim
//! ```

use crate::graph::{CsrBuilder, KnnGraph};
use goldfinger_core::serial::DecodeError;
use goldfinger_core::topk::Scored;
use std::io::{self, Read, Write};

/// Magic of a `GFCS` graph segment.
pub const SEGMENT_MAGIC: &[u8; 4] = b"GFCS";
const SEGMENT_VERSION: u8 = 1;
/// Flag bit: similarities are stored as exact `f64` (else compact `f32`).
const FLAG_EXACT_SIMS: u8 = 1;

fn corrupt(msg: impl Into<String>) -> DecodeError {
    DecodeError::Corrupt(msg.into())
}

/// Writes `v` in LEB128 (7 bits per byte, little-endian groups).
fn write_uvarint(w: &mut impl Write, mut v: u64) -> io::Result<()> {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

/// Reads a LEB128 integer (rejects encodings longer than 10 bytes).
fn read_uvarint(r: &mut impl Read) -> Result<u64, DecodeError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)?;
        let b = byte[0];
        if shift >= 63 && b > 1 {
            return Err(corrupt("varint overflows u64"));
        }
        v |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(corrupt("varint longer than 10 bytes"));
        }
    }
}

/// Maps a signed delta onto an unsigned varint-friendly value.
#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// A KNN graph with ids and similarities in two flat arrays: `u32` ids,
/// `f32` sims, `u64` offsets — half the resident bytes of [`KnnGraph`].
///
/// Conversion from a [`KnnGraph`] rounds similarities to `f32`;
/// [`CompactGraph::to_graph`] widens them back, which is *not* the
/// original `f64` in general. Use it where memory beats exactness
/// (read-mostly serving snapshots), never where golden digests are
/// compared.
#[derive(Debug, Clone, PartialEq)]
pub struct CompactGraph {
    k: usize,
    offsets: Vec<u64>,
    ids: Vec<u32>,
    sims: Vec<f32>,
}

impl CompactGraph {
    /// Compacts a [`KnnGraph`] (similarities round to `f32`).
    pub fn from_graph(graph: &KnnGraph) -> Self {
        let mut offsets = Vec::with_capacity(graph.n_users() + 1);
        let mut ids = Vec::with_capacity(graph.n_edges());
        let mut sims = Vec::with_capacity(graph.n_edges());
        offsets.push(0u64);
        for u in 0..graph.n_users() as u32 {
            for s in graph.neighbors(u) {
                ids.push(s.user);
                sims.push(s.sim as f32);
            }
            offsets.push(ids.len() as u64);
        }
        CompactGraph {
            k: graph.k(),
            offsets,
            ids,
            sims,
        }
    }

    /// Neighbourhood size parameter `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of users.
    pub fn n_users(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of directed edges.
    pub fn n_edges(&self) -> usize {
        self.ids.len()
    }

    /// Neighbour ids of `u`, most similar first.
    pub fn neighbor_ids(&self, u: u32) -> &[u32] {
        let u = u as usize;
        &self.ids[self.offsets[u] as usize..self.offsets[u + 1] as usize]
    }

    /// Neighbour similarities of `u`, aligned with
    /// [`CompactGraph::neighbor_ids`].
    pub fn neighbor_sims(&self, u: u32) -> &[f32] {
        let u = u as usize;
        &self.sims[self.offsets[u] as usize..self.offsets[u + 1] as usize]
    }

    /// Widens back to a [`KnnGraph`] (sims become `f32`-rounded `f64`s).
    pub fn to_graph(&self) -> KnnGraph {
        let mut builder = CsrBuilder::with_capacity(self.k, self.n_users());
        let mut list = Vec::with_capacity(self.k);
        for u in 0..self.n_users() as u32 {
            list.clear();
            for (&id, &sim) in self.neighbor_ids(u).iter().zip(self.neighbor_sims(u)) {
                list.push(Scored {
                    sim: f64::from(sim),
                    user: id,
                });
            }
            builder.push_list(&list);
        }
        builder.finish()
    }

    /// Resident bytes of the three arrays (capacity, not length).
    pub fn heap_bytes(&self) -> usize {
        self.offsets.capacity() * 8 + self.ids.capacity() * 4 + self.sims.capacity() * 4
    }
}

/// Streaming writer of one `GFCS` segment covering the contiguous user
/// range `user_lo .. user_lo + n_users` of a graph. Lists are pushed in
/// user order; ids in a list are **global** user ids.
#[derive(Debug)]
pub struct SegmentWriter<W: Write> {
    w: W,
    k: usize,
    user_lo: u64,
    n_users: u64,
    pushed: u64,
    exact_sims: bool,
}

impl<W: Write> SegmentWriter<W> {
    /// Writes the segment header. `exact_sims` selects `f64` payloads
    /// (bit-exact stitching) over `f32` (half the sim bytes).
    pub fn new(
        mut w: W,
        k: usize,
        user_lo: u64,
        n_users: u64,
        exact_sims: bool,
    ) -> io::Result<Self> {
        w.write_all(SEGMENT_MAGIC)?;
        let flags = if exact_sims { FLAG_EXACT_SIMS } else { 0 };
        w.write_all(&[SEGMENT_VERSION, flags, 0, 0])?;
        w.write_all(&(k as u32).to_le_bytes())?;
        w.write_all(&user_lo.to_le_bytes())?;
        w.write_all(&n_users.to_le_bytes())?;
        Ok(SegmentWriter {
            w,
            k,
            user_lo,
            n_users,
            pushed: 0,
            exact_sims,
        })
    }

    /// Appends the next user's neighbour list (global ids, sorted by
    /// decreasing similarity as everywhere else).
    ///
    /// # Panics
    /// Panics if more than `n_users` lists are pushed or a list exceeds
    /// `k` — writer bugs, not data corruption.
    pub fn push_list(&mut self, list: &[Scored]) -> io::Result<()> {
        assert!(self.pushed < self.n_users, "segment already full");
        assert!(list.len() <= self.k, "list exceeds k");
        self.pushed += 1;
        write_uvarint(&mut self.w, list.len() as u64)?;
        let mut prev = 0i64;
        for s in list {
            let id = i64::from(s.user);
            write_uvarint(&mut self.w, zigzag(id - prev))?;
            prev = id;
        }
        for s in list {
            if self.exact_sims {
                self.w.write_all(&s.sim.to_le_bytes())?;
            } else {
                self.w.write_all(&(s.sim as f32).to_le_bytes())?;
            }
        }
        Ok(())
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Panics
    /// Panics if fewer than `n_users` lists were pushed.
    pub fn finish(mut self) -> io::Result<W> {
        assert_eq!(self.pushed, self.n_users, "segment is missing lists");
        self.w.flush()?;
        Ok(self.w)
    }

    /// First global user id covered by this segment.
    pub fn user_lo(&self) -> u64 {
        self.user_lo
    }
}

/// One decoded `GFCS` segment: the neighbour lists of users
/// `user_lo .. user_lo + n_users()`, validated on read.
#[derive(Debug, Clone)]
pub struct Segment {
    k: usize,
    user_lo: u64,
    exact_sims: bool,
    offsets: Vec<u64>,
    ids: Vec<u32>,
    sims: Vec<f64>,
}

impl Segment {
    /// Neighbourhood size parameter `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// First global user id covered.
    pub fn user_lo(&self) -> u64 {
        self.user_lo
    }

    /// Number of users covered.
    pub fn n_users(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether similarities were stored as exact `f64`.
    pub fn exact_sims(&self) -> bool {
        self.exact_sims
    }

    /// The decoded neighbour list of local user `u` (0-based within the
    /// segment), as [`Scored`] entries with global ids.
    pub fn list(&self, u: usize) -> Vec<Scored> {
        let lo = self.offsets[u] as usize;
        let hi = self.offsets[u + 1] as usize;
        self.ids[lo..hi]
            .iter()
            .zip(&self.sims[lo..hi])
            .map(|(&user, &sim)| Scored { sim, user })
            .collect()
    }

    /// Appends every list of this segment into a [`CsrBuilder`] — the
    /// stitching primitive: feed segments in ascending `user_lo` order
    /// and `finish()` the builder into the full graph.
    pub fn append_into(&self, builder: &mut CsrBuilder) {
        let mut list = Vec::with_capacity(self.k);
        for u in 0..self.n_users() {
            let lo = self.offsets[u] as usize;
            let hi = self.offsets[u + 1] as usize;
            list.clear();
            for (&user, &sim) in self.ids[lo..hi].iter().zip(&self.sims[lo..hi]) {
                list.push(Scored { sim, user });
            }
            builder.push_list(&list);
        }
    }
}

/// Writes the user range `lo..hi` of a graph as one `GFCS` segment.
pub fn write_graph_segment(
    graph: &KnnGraph,
    lo: u32,
    hi: u32,
    exact_sims: bool,
    w: impl Write,
) -> io::Result<()> {
    assert!(lo <= hi && hi as usize <= graph.n_users(), "invalid range");
    let mut seg = SegmentWriter::new(w, graph.k(), u64::from(lo), u64::from(hi - lo), exact_sims)?;
    for u in lo..hi {
        seg.push_list(graph.neighbors(u))?;
    }
    seg.finish()?;
    Ok(())
}

/// Reads and validates one `GFCS` segment. `n_total` is the population of
/// the full graph the segment belongs to (bounds neighbour ids).
pub fn read_segment(r: &mut impl Read, n_total: u64) -> Result<Segment, DecodeError> {
    let mut head = [0u8; 28];
    r.read_exact(&mut head)?;
    if head[0..4] != *SEGMENT_MAGIC {
        return Err(DecodeError::BadMagic {
            expected: *SEGMENT_MAGIC,
            found: [head[0], head[1], head[2], head[3]],
        });
    }
    if head[4] != SEGMENT_VERSION {
        return Err(corrupt(format!("unsupported segment version {}", head[4])));
    }
    let flags = head[5];
    if flags & !FLAG_EXACT_SIMS != 0 {
        return Err(corrupt(format!("unknown segment flags {flags:#x}")));
    }
    let exact_sims = flags & FLAG_EXACT_SIMS != 0;
    let k = u32::from_le_bytes(head[8..12].try_into().unwrap()) as usize;
    let user_lo = u64::from_le_bytes(head[12..20].try_into().unwrap());
    let n_users = u64::from_le_bytes(head[20..28].try_into().unwrap());
    if k == 0 || user_lo.saturating_add(n_users) > n_total {
        return Err(corrupt(format!(
            "implausible segment header: k = {k}, range {user_lo}+{n_users} of {n_total}"
        )));
    }
    let n_users = usize::try_from(n_users).map_err(|_| corrupt("segment too large for usize"))?;
    let mut offsets = Vec::with_capacity(n_users + 1);
    offsets.push(0u64);
    let mut ids = Vec::new();
    let mut sims = Vec::new();
    for local in 0..n_users {
        let global = user_lo + local as u64;
        let degree = read_uvarint(r)?;
        if degree > k as u64 {
            return Err(corrupt(format!(
                "user {global}: {degree} neighbours exceed k = {k}"
            )));
        }
        let degree = degree as usize;
        let mut prev = 0i64;
        let base = ids.len();
        for _ in 0..degree {
            let id = prev + unzigzag(read_uvarint(r)?);
            if id < 0 || id as u64 >= n_total {
                return Err(corrupt(format!(
                    "user {global}: neighbour {id} out of range"
                )));
            }
            if id as u64 == global {
                return Err(corrupt(format!("user {global} is its own neighbour")));
            }
            prev = id;
            ids.push(id as u32);
        }
        for _ in 0..degree {
            let sim = if exact_sims {
                let mut b = [0u8; 8];
                r.read_exact(&mut b)?;
                f64::from_le_bytes(b)
            } else {
                let mut b = [0u8; 4];
                r.read_exact(&mut b)?;
                f64::from(f32::from_le_bytes(b))
            };
            if !sim.is_finite() || !(0.0..=1.0).contains(&sim) {
                return Err(corrupt(format!(
                    "user {global}: similarity {sim} out of range"
                )));
            }
            sims.push(sim);
        }
        let list = &ids[base..];
        let list_sims = &sims[base..];
        if list_sims
            .windows(2)
            .zip(list.windows(2))
            .any(|(s, i)| s[0] < s[1] || (s[0] == s[1] && i[0] >= i[1]))
        {
            return Err(corrupt(format!("user {global}: neighbour list mis-sorted")));
        }
        let mut sorted: Vec<u32> = list.to_vec();
        sorted.sort_unstable();
        if sorted.windows(2).any(|w| w[0] == w[1]) {
            return Err(corrupt(format!("user {global}: duplicate neighbours")));
        }
        offsets.push(ids.len() as u64);
    }
    Ok(Segment {
        k,
        user_lo,
        exact_sims,
        offsets,
        ids,
        sims,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::BruteForce;
    use goldfinger_core::profile::ProfileStore;
    use goldfinger_core::similarity::ExplicitJaccard;

    fn graph() -> KnnGraph {
        let lists: Vec<Vec<u32>> = (0..17)
            .map(|u| ((u * 4)..(u * 4 + 10 + u % 7)).collect())
            .collect();
        let profiles = ProfileStore::from_item_lists(lists);
        let sim = ExplicitJaccard::new(&profiles);
        BruteForce::default().build(&sim, 3).graph
    }

    #[test]
    fn compact_graph_halves_edges_and_round_trips_to_f32() {
        let g = graph();
        let c = CompactGraph::from_graph(&g);
        assert_eq!(c.k(), g.k());
        assert_eq!(c.n_users(), g.n_users());
        assert_eq!(c.n_edges(), g.n_edges());
        for u in 0..g.n_users() as u32 {
            let ids: Vec<u32> = g.neighbors(u).iter().map(|s| s.user).collect();
            assert_eq!(c.neighbor_ids(u), &ids[..]);
            for (s, &cs) in g.neighbors(u).iter().zip(c.neighbor_sims(u)) {
                assert_eq!(cs, s.sim as f32);
            }
        }
        let widened = c.to_graph();
        for u in 0..g.n_users() as u32 {
            for (orig, wide) in g.neighbors(u).iter().zip(widened.neighbors(u)) {
                assert_eq!(wide.user, orig.user);
                assert_eq!(wide.sim, f64::from(orig.sim as f32));
            }
        }
        assert!(c.heap_bytes() > 0);
    }

    #[test]
    fn exact_segments_stitch_bit_identically() {
        let g = graph();
        let n = g.n_users() as u32;
        // Three uneven ranges covering the whole graph.
        let cuts = [0u32, 5, 6, n];
        let mut segments = Vec::new();
        for w in cuts.windows(2) {
            let mut buf = Vec::new();
            write_graph_segment(&g, w[0], w[1], true, &mut buf).unwrap();
            segments.push(buf);
        }
        let mut builder = CsrBuilder::with_capacity(g.k(), g.n_users());
        for buf in &segments {
            let seg = read_segment(&mut buf.as_slice(), u64::from(n)).unwrap();
            assert!(seg.exact_sims());
            seg.append_into(&mut builder);
        }
        let stitched = builder.finish();
        assert_eq!(stitched.n_edges(), g.n_edges());
        for u in 0..n {
            assert_eq!(stitched.neighbors(u), g.neighbors(u), "user {u}");
        }
    }

    #[test]
    fn compact_segments_round_sims_to_f32() {
        let g = graph();
        let n = g.n_users() as u64;
        let mut buf = Vec::new();
        write_graph_segment(&g, 0, g.n_users() as u32, false, &mut buf).unwrap();
        let seg = read_segment(&mut buf.as_slice(), n).unwrap();
        assert!(!seg.exact_sims());
        for u in 0..g.n_users() {
            let list = seg.list(u);
            for (got, orig) in list.iter().zip(g.neighbors(u as u32)) {
                assert_eq!(got.user, orig.user);
                assert_eq!(got.sim, f64::from(orig.sim as f32));
            }
        }
        // The compact form is smaller than the exact form.
        let mut exact = Vec::new();
        write_graph_segment(&g, 0, g.n_users() as u32, true, &mut exact).unwrap();
        assert!(buf.len() < exact.len());
    }

    #[test]
    fn varint_and_zigzag_round_trip() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_uvarint(&mut buf, v).unwrap();
            assert_eq!(read_uvarint(&mut buf.as_slice()).unwrap(), v);
        }
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn corrupt_segments_are_rejected() {
        let g = graph();
        let n = g.n_users() as u64;
        let mut buf = Vec::new();
        write_graph_segment(&g, 0, g.n_users() as u32, true, &mut buf).unwrap();
        // Bad magic.
        let mut bad = buf.clone();
        bad[1] = b'?';
        assert!(matches!(
            read_segment(&mut bad.as_slice(), n),
            Err(DecodeError::BadMagic { .. })
        ));
        // Unknown flags.
        let mut bad = buf.clone();
        bad[5] = 0xFE;
        assert!(read_segment(&mut bad.as_slice(), n).is_err());
        // Range beyond the declared population.
        assert!(read_segment(&mut buf.as_slice(), 2).is_err());
        // Truncation surfaces as an I/O error.
        let mut bad = buf.clone();
        bad.truncate(bad.len() - 3);
        assert!(matches!(
            read_segment(&mut bad.as_slice(), n),
            Err(DecodeError::Io(_))
        ));
    }

    #[test]
    #[should_panic(expected = "missing lists")]
    fn segment_writer_rejects_short_push_count() {
        let seg = SegmentWriter::new(Vec::new(), 2, 0, 3, true).unwrap();
        let _ = seg.finish();
    }
}
