//! Local KNN-graph maintenance under profile updates.
//!
//! The paper's motivation (§1.2) includes "web real-time" services that
//! must refresh suggestions on fresh data at short intervals. Rebuilding
//! the whole graph for one changed profile is wasteful; this module repairs
//! a graph *locally*: when user `u`'s profile (or fingerprint) changes,
//! re-score `u` against a Hyrec-style candidate set — its current
//! neighbours, their neighbours, and its reverse neighbours — updating both
//! sides. One repair touches `O(k²)` similarities instead of `O(n·k)`-plus
//! for a full rebuild.

use crate::graph::KnnGraph;
use crate::neighborlist::NeighborList;
use goldfinger_core::similarity::Similarity;
use goldfinger_core::topk::Scored;

/// A KNN graph in mutable form, supporting local repairs.
///
/// ```
/// use goldfinger_core::profile::ProfileStore;
/// use goldfinger_core::similarity::ExplicitJaccard;
/// use goldfinger_knn::brute::BruteForce;
/// use goldfinger_knn::dynamic::DynamicKnn;
///
/// let profiles = ProfileStore::from_item_lists(vec![
///     (0..20).collect(), (5..25).collect(), (10..30).collect(),
/// ]);
/// let sim = ExplicitJaccard::new(&profiles);
/// let graph = BruteForce::default().build(&sim, 2).graph;
///
/// let mut dynamic = DynamicKnn::from_graph(&graph);
/// let evals = dynamic.repair_user(0, &sim); // local, not O(n)
/// assert!(evals < 9);
/// assert_eq!(dynamic.into_graph().neighbors(0), graph.neighbors(0));
/// ```
#[derive(Debug, Clone)]
pub struct DynamicKnn {
    k: usize,
    lists: Vec<NeighborList>,
}

impl DynamicKnn {
    /// Adopts a built graph.
    pub fn from_graph(graph: &KnnGraph) -> Self {
        let lists = (0..graph.n_users() as u32)
            .map(|u| {
                let mut list = NeighborList::new(graph.k());
                for s in graph.neighbors(u) {
                    list.insert(s.user, s.sim);
                }
                list
            })
            .collect();
        DynamicKnn {
            k: graph.k(),
            lists,
        }
    }

    /// Number of users.
    pub fn n_users(&self) -> usize {
        self.lists.len()
    }

    /// Neighbourhood size.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Current neighbours of `u`, sorted by decreasing similarity.
    pub fn neighbors(&self, u: u32) -> Vec<Scored> {
        self.lists[u as usize].to_sorted()
    }

    /// Repairs the graph after user `u`'s profile changed: rebuilds `u`'s
    /// scores and offers `u` to the candidates' lists. Returns the number
    /// of similarity evaluations spent.
    ///
    /// The provider must already reflect the update (e.g. call
    /// `ShfStore::set_fingerprint` first). Purely local: if the user's
    /// tastes migrated *entirely* out of its old neighbourhood, use
    /// [`DynamicKnn::repair_user_with_probes`] so random exploration can
    /// escape the stale cluster.
    pub fn repair_user<S: Similarity>(&mut self, u: u32, sim: &S) -> u64 {
        self.repair_user_with_probes(u, sim, 0, 0)
    }

    /// Like [`DynamicKnn::repair_user`], but additionally scores `probes`
    /// uniformly random users — the greedy-plus-exploration recipe of
    /// NNDescent-style maintenance, needed when an update invalidates the
    /// whole old neighbourhood.
    pub fn repair_user_with_probes<S: Similarity>(
        &mut self,
        u: u32,
        sim: &S,
        probes: usize,
        seed: u64,
    ) -> u64 {
        let mut candidates = self.candidate_set(u);
        if probes > 0 && self.lists.len() > 1 {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed ^ u as u64);
            let n = self.lists.len();
            for _ in 0..probes {
                let v = rng.gen_range(0..n) as u32;
                if v != u {
                    candidates.push(v);
                }
            }
            candidates.sort_unstable();
            candidates.dedup();
        }
        // Rebuild u's list from scratch: old similarities are stale.
        let mut fresh = NeighborList::new(self.k);
        let mut evals = 0u64;
        for &v in &candidates {
            evals += 1;
            let s = sim.similarity(u, v);
            fresh.insert(v, s);
            // Symmetric offer: v may now like the updated u better. Its
            // other entries are still valid (only u changed).
            self.remove_entry(v, u);
            self.lists[v as usize].insert(u, s);
        }
        self.lists[u as usize] = fresh;
        evals
    }

    /// Inserts a brand-new user at the end of the population and wires it
    /// into the graph via the provider (scans `seeds` plus their
    /// neighbours). Returns the new user's id.
    ///
    /// The provider must already cover the new user (its `n_users()` must
    /// equal the graph's new population).
    pub fn add_user<S: Similarity>(&mut self, sim: &S, seeds: &[u32]) -> u32 {
        let u = self.lists.len() as u32;
        self.lists.push(NeighborList::new(self.k));
        assert_eq!(
            sim.n_users(),
            self.lists.len(),
            "provider does not cover the new user"
        );
        let mut candidates: Vec<u32> = Vec::new();
        for &s in seeds {
            candidates.push(s);
            candidates.extend(self.lists[s as usize].users());
        }
        candidates.sort_unstable();
        candidates.dedup();
        candidates.retain(|&v| v != u);
        for v in candidates {
            let s = sim.similarity(u, v);
            self.lists[u as usize].insert(v, s);
            self.lists[v as usize].insert(u, s);
        }
        u
    }

    /// Freezes back into an immutable graph.
    pub fn into_graph(self) -> KnnGraph {
        let lists = self.lists.iter().map(NeighborList::to_sorted).collect();
        KnnGraph::from_lists(self.k, lists)
    }

    /// Hyrec-style candidate set for `u`: neighbours, their neighbours,
    /// and reverse neighbours.
    fn candidate_set(&self, u: u32) -> Vec<u32> {
        let mut out: Vec<u32> = Vec::new();
        for v in self.lists[u as usize].users() {
            out.push(v);
            out.extend(self.lists[v as usize].users());
        }
        for (w, list) in self.lists.iter().enumerate() {
            if list.contains(u) {
                out.push(w as u32);
            }
        }
        out.sort_unstable();
        out.dedup();
        out.retain(|&v| v != u);
        out
    }

    fn remove_entry(&mut self, owner: u32, neighbor: u32) {
        let list = &mut self.lists[owner as usize];
        if list.contains(neighbor) {
            let kept: Vec<(u32, f64)> = list
                .entries()
                .iter()
                .filter(|e| e.user != neighbor)
                .map(|e| (e.user, e.sim))
                .collect();
            let mut rebuilt = NeighborList::new(list.k());
            for (user, sim) in kept {
                rebuilt.insert(user, sim);
            }
            *list = rebuilt;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::BruteForce;
    use goldfinger_core::profile::ProfileStore;
    use goldfinger_core::shf::ShfParams;
    use goldfinger_core::similarity::{ExplicitJaccard, ShfJaccard};

    /// Two clusters of 6 users over disjoint item ranges.
    fn profiles() -> Vec<Vec<u32>> {
        let mut lists = Vec::new();
        for u in 0..6u32 {
            let mut items: Vec<u32> = (0..15).collect();
            items.push(100 + u);
            lists.push(items);
        }
        for u in 0..6u32 {
            let mut items: Vec<u32> = (50..65).collect();
            items.push(200 + u);
            lists.push(items);
        }
        lists
    }

    #[test]
    fn adoption_roundtrips() {
        let store = ProfileStore::from_item_lists(profiles());
        let sim = ExplicitJaccard::new(&store);
        let graph = BruteForce::default().build(&sim, 3).graph;
        let dynamic = DynamicKnn::from_graph(&graph);
        let back = dynamic.into_graph();
        for u in 0..12u32 {
            assert_eq!(back.neighbors(u), graph.neighbors(u));
        }
    }

    #[test]
    fn repair_moves_a_migrated_user_to_its_new_cluster() {
        let mut lists = profiles();
        let store = ProfileStore::from_item_lists(lists.clone());
        let sim = ExplicitJaccard::new(&store);
        let graph = BruteForce::default().build(&sim, 3).graph;
        // User 0's old neighbours are in cluster A.
        assert!(graph.neighbors(0).iter().all(|s| s.user < 6));

        // User 0 switches tastes entirely to cluster B's items.
        lists[0] = (50..66).collect();
        let updated = ProfileStore::from_item_lists(lists);
        let new_sim = ExplicitJaccard::new(&updated);

        let mut dynamic = DynamicKnn::from_graph(&graph);
        // A purely local repair cannot escape the stale cluster: random
        // probes provide the exploration, then a second (probe-free)
        // repair walks the freshly found cluster via neighbours-of-
        // neighbours.
        let evals1 = dynamic.repair_user_with_probes(0, &new_sim, 8, 42);
        assert!(evals1 > 0);
        let _ = dynamic.repair_user(0, &new_sim);
        let repaired = dynamic.into_graph();
        assert!(
            repaired.neighbors(0).iter().all(|s| s.user >= 6),
            "user 0 should now neighbour cluster B: {:?}",
            repaired.neighbors(0)
        );
        // And B-users adopted user 0 where it beats their old worst.
        let adopted = (6..12u32)
            .filter(|&v| repaired.neighbors(v).iter().any(|s| s.user == 0))
            .count();
        assert!(adopted > 0, "no B-user adopted the migrated user");
    }

    #[test]
    fn repair_with_fingerprints_tracks_the_update() {
        let mut lists = profiles();
        let params = ShfParams::new(1024, goldfinger_core::hash::DynHasher::default());
        let store = ProfileStore::from_item_lists(lists.clone());
        let mut fps = params.fingerprint_store(&store);
        let graph = {
            let sim = ShfJaccard::new(&fps);
            BruteForce::default().build(&sim, 3).graph
        };
        // Fold cluster-B items into user 0's fingerprint incrementally.
        lists[0].extend(50..65);
        let mut shf = fps.get(0);
        for item in 50..65u32 {
            shf.insert_item(item, params.hasher());
        }
        fps.set_fingerprint(0, &shf);

        let sim = ShfJaccard::new(&fps);
        let mut dynamic = DynamicKnn::from_graph(&graph);
        dynamic.repair_user(0, &sim);
        // The candidate set only covers the old neighbourhood, but the
        // rescored similarities must now match the updated fingerprint.
        let repaired = dynamic.into_graph();
        for s in repaired.neighbors(0) {
            assert!((s.sim - sim.similarity(0, s.user)).abs() < 1e-12);
        }
    }

    #[test]
    fn add_user_wires_into_existing_cluster() {
        let mut lists = profiles();
        let store = ProfileStore::from_item_lists(lists.clone());
        let sim = ExplicitJaccard::new(&store);
        let graph = BruteForce::default().build(&sim, 3).graph;
        let mut dynamic = DynamicKnn::from_graph(&graph);

        // New user with cluster-A tastes; provider must cover them.
        lists.push((0..15).collect());
        let grown = ProfileStore::from_item_lists(lists);
        let new_sim = ExplicitJaccard::new(&grown);
        let id = dynamic.add_user(&new_sim, &[0]);
        assert_eq!(id, 12);
        let graph = dynamic.into_graph();
        assert!(!graph.neighbors(12).is_empty());
        assert!(graph.neighbors(12).iter().all(|s| s.user < 6));
        // Existing cluster-A users may adopt the newcomer.
        assert!(graph.n_users() == 13);
    }

    #[test]
    #[should_panic(expected = "does not cover")]
    fn add_user_requires_matching_provider() {
        let store = ProfileStore::from_item_lists(profiles());
        let sim = ExplicitJaccard::new(&store);
        let graph = BruteForce::default().build(&sim, 3).graph;
        let mut dynamic = DynamicKnn::from_graph(&graph);
        let _ = dynamic.add_user(&sim, &[0]); // provider still has 12 users
    }

    #[test]
    fn repair_cost_is_local() {
        let store = ProfileStore::from_item_lists(profiles());
        let sim = ExplicitJaccard::new(&store);
        let graph = BruteForce::default().build(&sim, 3).graph;
        let mut dynamic = DynamicKnn::from_graph(&graph);
        let evals = dynamic.repair_user(0, &sim);
        // Candidate set ≤ k + k² + reverse ≈ well below n·(n−1).
        assert!(evals <= (3 + 9 + 12) as u64);
    }
}
