//! Local KNN-graph maintenance under profile updates.
//!
//! The paper's motivation (§1.2) includes "web real-time" services that
//! must refresh suggestions on fresh data at short intervals. Rebuilding
//! the whole graph for one changed profile is wasteful; this module repairs
//! a graph *locally*: when user `u`'s profile (or fingerprint) changes,
//! re-score `u` against a Hyrec-style candidate set — its current
//! neighbours, their neighbours, and its reverse neighbours — updating both
//! sides. One repair touches `O(k²)` similarities instead of `O(n·k)`-plus
//! for a full rebuild.
//!
//! Reverse neighbours come from a maintained inverted index
//! ([`DynamicKnn::reverse_neighbors`]), updated on every insert and
//! eviction, so discovering them is `O(|rev(u)|)` — *not* a scan of all
//! `n` lists. That index is what makes the repair genuinely local; the
//! sharded serving layer ([`crate::serve`]) keeps the same index per
//! shard.

use crate::graph::KnnGraph;
use crate::neighborlist::{NeighborList, Offer};
use goldfinger_core::similarity::Similarity;
use goldfinger_core::topk::Scored;

/// Mixes a per-user repair counter into the probe seed.
///
/// Seeding with `seed ^ u` alone makes every repair of the same user draw
/// the *same* probes, so re-repairing can never explore new candidates;
/// folding a monotonic counter through a splitmix64-style finalizer gives
/// each `(user, repair)` pair an independent stream while staying
/// deterministic for replay.
pub fn probe_seed(seed: u64, u: u32, counter: u64) -> u64 {
    let mut z = seed
        ^ (u as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ counter.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Inserts `v` into a sorted id vector (no-op when present).
pub(crate) fn sorted_insert(ids: &mut Vec<u32>, v: u32) {
    if let Err(i) = ids.binary_search(&v) {
        ids.insert(i, v);
    }
}

/// Removes `v` from a sorted id vector (no-op when absent).
pub(crate) fn sorted_remove(ids: &mut Vec<u32>, v: u32) {
    if let Ok(i) = ids.binary_search(&v) {
        ids.remove(i);
    }
}

/// A KNN graph in mutable form, supporting local repairs.
///
/// ```
/// use goldfinger_core::profile::ProfileStore;
/// use goldfinger_core::similarity::ExplicitJaccard;
/// use goldfinger_knn::brute::BruteForce;
/// use goldfinger_knn::dynamic::DynamicKnn;
///
/// let profiles = ProfileStore::from_item_lists(vec![
///     (0..20).collect(), (5..25).collect(), (10..30).collect(),
/// ]);
/// let sim = ExplicitJaccard::new(&profiles);
/// let graph = BruteForce::default().build(&sim, 2).graph;
///
/// let mut dynamic = DynamicKnn::from_graph(&graph);
/// let evals = dynamic.repair_user(0, &sim); // local, not O(n)
/// assert!(evals < 9);
/// assert_eq!(dynamic.into_graph().neighbors(0), graph.neighbors(0));
/// ```
#[derive(Debug, Clone)]
pub struct DynamicKnn {
    k: usize,
    lists: Vec<NeighborList>,
    /// `rev[u]` = sorted ids of the users whose list contains `u`, kept in
    /// lock-step with every membership change of `lists`.
    rev: Vec<Vec<u32>>,
    /// Number of repairs performed per user, mixed into probe seeds so
    /// consecutive repairs explore different random candidates.
    repairs: Vec<u64>,
}

impl DynamicKnn {
    /// Adopts a built graph.
    pub fn from_graph(graph: &KnnGraph) -> Self {
        let n = graph.n_users();
        let lists: Vec<NeighborList> = (0..n as u32)
            .map(|u| {
                let mut list = NeighborList::new(graph.k());
                for s in graph.neighbors(u) {
                    list.insert(s.user, s.sim);
                }
                list
            })
            .collect();
        let mut rev = vec![Vec::new(); n];
        for (u, list) in lists.iter().enumerate() {
            for v in list.users() {
                rev[v as usize].push(u as u32);
            }
        }
        for ids in &mut rev {
            ids.sort_unstable();
        }
        DynamicKnn {
            k: graph.k(),
            lists,
            rev,
            repairs: vec![0; n],
        }
    }

    /// Number of users.
    pub fn n_users(&self) -> usize {
        self.lists.len()
    }

    /// Neighbourhood size.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Current neighbours of `u`, sorted by decreasing similarity.
    pub fn neighbors(&self, u: u32) -> Vec<Scored> {
        self.lists[u as usize].to_sorted()
    }

    /// Users whose neighbour list currently contains `u` (sorted) — the
    /// maintained inverted index repairs read instead of scanning all `n`
    /// lists.
    pub fn reverse_neighbors(&self, u: u32) -> &[u32] {
        &self.rev[u as usize]
    }

    /// Repairs the graph after user `u`'s profile changed: rebuilds `u`'s
    /// scores and offers `u` to the candidates' lists. Returns the number
    /// of similarity evaluations spent.
    ///
    /// The provider must already reflect the update (e.g. call
    /// `ShfStore::set_fingerprint` first). Purely local: if the user's
    /// tastes migrated *entirely* out of its old neighbourhood, use
    /// [`DynamicKnn::repair_user_with_probes`] so random exploration can
    /// escape the stale cluster.
    pub fn repair_user<S: Similarity>(&mut self, u: u32, sim: &S) -> u64 {
        self.repair_user_with_probes(u, sim, 0, 0)
    }

    /// Like [`DynamicKnn::repair_user`], but additionally scores `probes`
    /// uniformly random users — the greedy-plus-exploration recipe of
    /// NNDescent-style maintenance, needed when an update invalidates the
    /// whole old neighbourhood. Each repair of the same user draws a fresh
    /// probe set (a per-user repair counter is mixed into the seed).
    pub fn repair_user_with_probes<S: Similarity>(
        &mut self,
        u: u32,
        sim: &S,
        probes: usize,
        seed: u64,
    ) -> u64 {
        let counter = self.repairs[u as usize];
        self.repairs[u as usize] += 1;
        let mut candidates = self.candidate_set(u);
        if probes > 0 && self.lists.len() > 1 {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(probe_seed(seed, u, counter));
            let n = self.lists.len();
            for _ in 0..probes {
                let v = rng.gen_range(0..n) as u32;
                if v != u {
                    candidates.push(v);
                }
            }
            candidates.sort_unstable();
            candidates.dedup();
        }
        // Rebuild u's list from scratch: old similarities are stale.
        let mut fresh = NeighborList::new(self.k);
        let mut evals = 0u64;
        for &v in &candidates {
            evals += 1;
            let s = sim.similarity(u, v);
            fresh.insert(v, s);
            // Symmetric side: v may still (or newly) want the updated u.
            self.offer_entry(v, u, s);
        }
        self.replace_list(u, fresh);
        evals
    }

    /// Inserts a brand-new user at the end of the population and wires it
    /// into the graph via the provider (scans `seeds` plus their
    /// neighbours). Returns the new user's id.
    ///
    /// The provider must already cover the new user (its `n_users()` must
    /// equal the graph's new population).
    pub fn add_user<S: Similarity>(&mut self, sim: &S, seeds: &[u32]) -> u32 {
        let u = self.lists.len() as u32;
        self.lists.push(NeighborList::new(self.k));
        self.rev.push(Vec::new());
        self.repairs.push(0);
        assert_eq!(
            sim.n_users(),
            self.lists.len(),
            "provider does not cover the new user"
        );
        let mut candidates: Vec<u32> = Vec::new();
        for &s in seeds {
            candidates.push(s);
            candidates.extend(self.lists[s as usize].users());
        }
        candidates.sort_unstable();
        candidates.dedup();
        candidates.retain(|&v| v != u);
        for v in candidates {
            let s = sim.similarity(u, v);
            self.insert_entry(u, v, s);
            self.insert_entry(v, u, s);
        }
        u
    }

    /// Freezes back into an immutable graph.
    pub fn into_graph(self) -> KnnGraph {
        let lists = self.lists.iter().map(NeighborList::to_sorted).collect();
        KnnGraph::from_lists(self.k, lists)
    }

    /// Hyrec-style candidate set for `u`: neighbours, their neighbours,
    /// and reverse neighbours (read from the maintained inverted index —
    /// `O(k² + |rev(u)|)`, independent of the population size).
    fn candidate_set(&self, u: u32) -> Vec<u32> {
        let mut out: Vec<u32> = Vec::new();
        for v in self.lists[u as usize].users() {
            out.push(v);
            out.extend(self.lists[v as usize].users());
        }
        out.extend_from_slice(&self.rev[u as usize]);
        out.sort_unstable();
        out.dedup();
        out.retain(|&v| v != u);
        out
    }

    /// Offers `(neighbor, sim)` to `owner`'s list, maintaining the reverse
    /// index through whatever membership change results.
    fn insert_entry(&mut self, owner: u32, neighbor: u32, sim: f64) {
        match self.lists[owner as usize].offer(neighbor, sim) {
            Offer::Added => sorted_insert(&mut self.rev[neighbor as usize], owner),
            Offer::Replaced(evicted) => {
                sorted_insert(&mut self.rev[neighbor as usize], owner);
                sorted_remove(&mut self.rev[evicted as usize], owner);
            }
            Offer::Rejected | Offer::Duplicate => {}
        }
    }

    /// The symmetric half of a repair: `u`'s similarity to `v` changed to
    /// `s`. If `u` already sits in `v`'s list its stored similarity is
    /// updated **in place** — a downgrade must not be laundered into a
    /// remove-then-insert, which would always succeed (the removal frees a
    /// slot) and re-admit `u` no matter how bad the new similarity is.
    /// If `u` is absent it is offered normally and must beat the current
    /// worst to enter.
    fn offer_entry(&mut self, v: u32, u: u32, s: f64) {
        if !self.lists[v as usize].update_sim(u, s) {
            self.insert_entry(v, u, s);
        }
    }

    /// Replaces `u`'s whole list, updating the reverse index for every
    /// membership delta.
    fn replace_list(&mut self, u: u32, fresh: NeighborList) {
        let old: Vec<u32> = self.lists[u as usize].users().collect();
        for &w in &old {
            if !fresh.contains(w) {
                sorted_remove(&mut self.rev[w as usize], u);
            }
        }
        for w in fresh.users() {
            if !old.contains(&w) {
                sorted_insert(&mut self.rev[w as usize], u);
            }
        }
        self.lists[u as usize] = fresh;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::BruteForce;
    use goldfinger_core::profile::ProfileStore;
    use goldfinger_core::shf::ShfParams;
    use goldfinger_core::similarity::{ExplicitJaccard, ShfJaccard};

    /// `clusters` clusters of 6 users over disjoint item ranges; every
    /// cluster has the same internal similarity structure (15 shared items
    /// plus one private item per user), shifted in id space.
    fn clustered_profiles(clusters: u32) -> Vec<Vec<u32>> {
        let mut lists = Vec::new();
        for c in 0..clusters {
            for u in 0..6u32 {
                let base = c * 1000;
                let mut items: Vec<u32> = (base..base + 15).collect();
                items.push(base + 100 + u);
                lists.push(items);
            }
        }
        lists
    }

    /// Two clusters of 6 users over disjoint item ranges.
    fn profiles() -> Vec<Vec<u32>> {
        let mut lists = Vec::new();
        for u in 0..6u32 {
            let mut items: Vec<u32> = (0..15).collect();
            items.push(100 + u);
            lists.push(items);
        }
        for u in 0..6u32 {
            let mut items: Vec<u32> = (50..65).collect();
            items.push(200 + u);
            lists.push(items);
        }
        lists
    }

    fn rev_invariant(d: &DynamicKnn) {
        // The maintained index must equal the index recomputed from the
        // lists after any sequence of repairs.
        let mut expect = vec![Vec::new(); d.n_users()];
        for u in 0..d.n_users() as u32 {
            for v in d.lists[u as usize].users() {
                expect[v as usize].push(u);
            }
        }
        for ids in &mut expect {
            ids.sort_unstable();
        }
        assert_eq!(d.rev, expect, "reverse index out of sync");
    }

    #[test]
    fn adoption_roundtrips() {
        let store = ProfileStore::from_item_lists(profiles());
        let sim = ExplicitJaccard::new(&store);
        let graph = BruteForce::default().build(&sim, 3).graph;
        let dynamic = DynamicKnn::from_graph(&graph);
        rev_invariant(&dynamic);
        let back = dynamic.into_graph();
        for u in 0..12u32 {
            assert_eq!(back.neighbors(u), graph.neighbors(u));
        }
    }

    #[test]
    fn repair_moves_a_migrated_user_to_its_new_cluster() {
        let mut lists = profiles();
        let store = ProfileStore::from_item_lists(lists.clone());
        let sim = ExplicitJaccard::new(&store);
        let graph = BruteForce::default().build(&sim, 3).graph;
        // User 0's old neighbours are in cluster A.
        assert!(graph.neighbors(0).iter().all(|s| s.user < 6));

        // User 0 switches tastes entirely to cluster B's items.
        lists[0] = (50..66).collect();
        let updated = ProfileStore::from_item_lists(lists);
        let new_sim = ExplicitJaccard::new(&updated);

        let mut dynamic = DynamicKnn::from_graph(&graph);
        // A purely local repair cannot escape the stale cluster: random
        // probes provide the exploration, then a second (probe-free)
        // repair walks the freshly found cluster via neighbours-of-
        // neighbours.
        let evals1 = dynamic.repair_user_with_probes(0, &new_sim, 8, 42);
        assert!(evals1 > 0);
        let _ = dynamic.repair_user(0, &new_sim);
        rev_invariant(&dynamic);
        let repaired = dynamic.into_graph();
        assert!(
            repaired.neighbors(0).iter().all(|s| s.user >= 6),
            "user 0 should now neighbour cluster B: {:?}",
            repaired.neighbors(0)
        );
        // And B-users adopted user 0 where it beats their old worst.
        let adopted = (6..12u32)
            .filter(|&v| repaired.neighbors(v).iter().any(|s| s.user == 0))
            .count();
        assert!(adopted > 0, "no B-user adopted the migrated user");
    }

    #[test]
    fn repair_with_fingerprints_tracks_the_update() {
        let mut lists = profiles();
        let params = ShfParams::new(1024, goldfinger_core::hash::DynHasher::default());
        let store = ProfileStore::from_item_lists(lists.clone());
        let mut fps = params.fingerprint_store(&store);
        let graph = {
            let sim = ShfJaccard::new(&fps);
            BruteForce::default().build(&sim, 3).graph
        };
        // Fold cluster-B items into user 0's fingerprint incrementally.
        lists[0].extend(50..65);
        let mut shf = fps.get(0);
        for item in 50..65u32 {
            shf.insert_item(item, params.hasher());
        }
        fps.set_fingerprint(0, &shf);

        let sim = ShfJaccard::new(&fps);
        let mut dynamic = DynamicKnn::from_graph(&graph);
        dynamic.repair_user(0, &sim);
        // The candidate set only covers the old neighbourhood, but the
        // rescored similarities must now match the updated fingerprint.
        let repaired = dynamic.into_graph();
        for s in repaired.neighbors(0) {
            assert!((s.sim - sim.similarity(0, s.user)).abs() < 1e-12);
        }
    }

    #[test]
    fn add_user_wires_into_existing_cluster() {
        let mut lists = profiles();
        let store = ProfileStore::from_item_lists(lists.clone());
        let sim = ExplicitJaccard::new(&store);
        let graph = BruteForce::default().build(&sim, 3).graph;
        let mut dynamic = DynamicKnn::from_graph(&graph);

        // New user with cluster-A tastes; provider must cover them.
        lists.push((0..15).collect());
        let grown = ProfileStore::from_item_lists(lists);
        let new_sim = ExplicitJaccard::new(&grown);
        let id = dynamic.add_user(&new_sim, &[0]);
        assert_eq!(id, 12);
        rev_invariant(&dynamic);
        let graph = dynamic.into_graph();
        assert!(!graph.neighbors(12).is_empty());
        assert!(graph.neighbors(12).iter().all(|s| s.user < 6));
        // Existing cluster-A users may adopt the newcomer.
        assert!(graph.n_users() == 13);
    }

    #[test]
    #[should_panic(expected = "does not cover")]
    fn add_user_requires_matching_provider() {
        let store = ProfileStore::from_item_lists(profiles());
        let sim = ExplicitJaccard::new(&store);
        let graph = BruteForce::default().build(&sim, 3).graph;
        let mut dynamic = DynamicKnn::from_graph(&graph);
        let _ = dynamic.add_user(&sim, &[0]); // provider still has 12 users
    }

    #[test]
    fn repair_cost_is_local() {
        let store = ProfileStore::from_item_lists(profiles());
        let sim = ExplicitJaccard::new(&store);
        let graph = BruteForce::default().build(&sim, 3).graph;
        let mut dynamic = DynamicKnn::from_graph(&graph);
        let evals = dynamic.repair_user(0, &sim);
        // Candidate set ≤ k + k² + reverse ≈ well below n·(n−1).
        assert!(evals <= (3 + 9 + 12) as u64);
    }

    #[test]
    fn repair_cost_is_independent_of_population_size() {
        // Regression for the O(n·k) reverse-neighbour scan: the same user
        // in the same cluster structure must cost the *same* number of
        // evaluations whether the population holds 2 clusters or 20 —
        // repairs read the maintained reverse index, never all n lists.
        let mut costs = Vec::new();
        for clusters in [2u32, 20] {
            let store = ProfileStore::from_item_lists(clustered_profiles(clusters));
            let sim = ExplicitJaccard::new(&store);
            let graph = BruteForce::default().build(&sim, 3).graph;
            // Sanity: the exact graph keeps user 0 inside its own cluster,
            // so the candidate set cannot grow with the cluster count.
            assert!(graph.neighbors(0).iter().all(|s| s.user < 6));
            let mut dynamic = DynamicKnn::from_graph(&graph);
            costs.push(dynamic.repair_user(0, &sim));
            rev_invariant(&dynamic);
        }
        assert_eq!(
            costs[0], costs[1],
            "repair cost changed with population size: {costs:?}"
        );
        assert!(costs[0] <= (3 + 9 + 6) as u64);
    }

    #[test]
    fn consecutive_probe_repairs_draw_different_probe_sets() {
        // Regression for `seed ^ u` probe seeding: the counter mixed into
        // the seed must give each repair of the same user a fresh stream.
        for u in [0u32, 3, 17] {
            let a = probe_seed(42, u, 0);
            let b = probe_seed(42, u, 1);
            assert_ne!(a, b, "user {u}: counter did not change the seed");
        }

        // End to end: two consecutive probe repairs of a user with an
        // empty neighbourhood must visit different candidates. With 64
        // users and 4 probes, identical draws would be a ~1-in-500k fluke
        // — and the old `seed ^ u` scheme made them *always* identical.
        // A recording provider observes exactly which pairs each repair
        // scores; user 0 is fully isolated, so those pairs *are* the
        // probe set.
        struct RecordingSim {
            pairs: std::sync::Mutex<Vec<u32>>,
        }
        impl Similarity for RecordingSim {
            fn n_users(&self) -> usize {
                64
            }
            fn similarity(&self, _u: u32, v: u32) -> f64 {
                self.pairs.lock().unwrap().push(v);
                0.1
            }
            fn bytes_per_eval(&self, _u: u32, _v: u32) -> u64 {
                0
            }
        }
        let mut lists = vec![Vec::new(); 64];
        for v in 1..64u32 {
            // A ring over users 1..64 that never touches user 0.
            let w = if v == 63 { 1 } else { v + 1 };
            lists[v as usize] = vec![Scored { sim: 0.5, user: w }];
        }
        let graph = KnnGraph::from_lists(3, lists);
        let mut dynamic = DynamicKnn::from_graph(&graph);
        let sim = RecordingSim {
            pairs: std::sync::Mutex::new(Vec::new()),
        };
        // Draw, then fully re-isolate user 0 (drop its list and every
        // adoption) so the *only* state surviving to the next draw is the
        // repair counter — making the probe sets directly comparable.
        let draw = |d: &mut DynamicKnn| -> Vec<u32> {
            sim.pairs.lock().unwrap().clear();
            d.repair_user_with_probes(0, &sim, 4, 7);
            let mut ids = sim.pairs.lock().unwrap().clone();
            ids.sort_unstable();
            d.replace_list(0, NeighborList::new(3));
            for w in d.rev[0].clone() {
                d.lists[w as usize].remove(0);
                sorted_remove(&mut d.rev[0], w);
            }
            rev_invariant(d);
            ids
        };
        let first = draw(&mut dynamic);
        let second = draw(&mut dynamic);
        assert!(!first.is_empty() && !second.is_empty());
        assert_ne!(
            first, second,
            "two consecutive probe repairs explored the same probe set"
        );
    }

    #[test]
    fn downgraded_member_loses_to_a_fresh_better_candidate() {
        // Regression for the symmetric-offer downgrade: when a member's
        // similarity collapses, the entry must be updated in place (and
        // become evictable), not removed-and-reinserted as if it were a
        // winning fresh offer.
        let mut lists = profiles();
        let store = ProfileStore::from_item_lists(lists.clone());
        let sim = ExplicitJaccard::new(&store);
        let graph = BruteForce::default().build(&sim, 3).graph;
        let mut dynamic = DynamicKnn::from_graph(&graph);
        let victim = 1u32; // a cluster-A user listing user 0
        assert!(dynamic.lists[victim as usize].contains(0));

        // User 0's tastes collapse to a single alien item: sim(0, ·) ≈ 0.
        lists[0] = vec![9999];
        let crashed = ProfileStore::from_item_lists(lists.clone());
        let crashed_sim = ExplicitJaccard::new(&crashed);
        dynamic.repair_user(0, &crashed_sim);
        rev_invariant(&dynamic);
        // In place: still a member (nothing displaced it yet), but at the
        // collapsed similarity...
        let entry = dynamic
            .neighbors(victim)
            .into_iter()
            .find(|s| s.user == 0)
            .expect("downgraded entry should remain until displaced");
        assert!(entry.sim < 0.05, "stale similarity kept: {}", entry.sim);

        // ...so the next fresh candidate that beats it must evict it. A
        // newcomer with exactly cluster A's tastes scores ~1 against the
        // victim's full list, whose worst entry is now the downgraded 0.
        lists.push((0..15).collect());
        let grown = ProfileStore::from_item_lists(lists);
        let grown_sim = ExplicitJaccard::new(&grown);
        let newcomer = dynamic.add_user(&grown_sim, &[victim]);
        rev_invariant(&dynamic);
        let after = dynamic.neighbors(victim);
        assert!(
            after.iter().any(|s| s.user == newcomer),
            "victim did not adopt the better fresh candidate: {after:?}"
        );
        assert!(
            after.iter().all(|s| s.user != 0),
            "full list retained the downgraded user over a better \
             candidate: {after:?}"
        );
    }

    #[test]
    fn reverse_index_tracks_repairs() {
        let store = ProfileStore::from_item_lists(profiles());
        let sim = ExplicitJaccard::new(&store);
        let graph = BruteForce::default().build(&sim, 3).graph;
        let mut dynamic = DynamicKnn::from_graph(&graph);
        rev_invariant(&dynamic);
        for u in 0..dynamic.n_users() as u32 {
            dynamic.repair_user_with_probes(u, &sim, 3, 99);
            rev_invariant(&dynamic);
        }
        // Reverse neighbours are exactly the users listing u.
        for u in 0..dynamic.n_users() as u32 {
            for &w in dynamic.reverse_neighbors(u) {
                assert!(dynamic.lists[w as usize].contains(u));
            }
        }
    }
}
