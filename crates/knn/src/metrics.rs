//! Graph quality metrics (§2.1 of the paper).

use crate::graph::KnnGraph;
use goldfinger_core::similarity::Similarity;

/// Average *exact* similarity over the directed edges of a graph (Eq. 2).
///
/// Pass the explicit provider here even for GoldFinger-built graphs: the
/// paper evaluates approximate graphs against ground-truth similarities,
/// not against the estimates the builder saw.
pub fn average_similarity<S: Similarity>(graph: &KnnGraph, exact: &S) -> f64 {
    let mut total = 0.0f64;
    let mut edges = 0usize;
    for (u, v, _) in graph.edges() {
        total += exact.similarity(u, v);
        edges += 1;
    }
    if edges == 0 {
        0.0
    } else {
        total / edges as f64
    }
}

/// KNN quality (Eq. 3): the graph's average exact similarity divided by the
/// exact graph's. 1.0 means the approximation is as good as exact
/// neighbourhoods; values slightly above 1.0 can occur when the approximate
/// graph has fewer (but better) edges.
pub fn quality<S: Similarity>(graph: &KnnGraph, exact_graph: &KnnGraph, exact: &S) -> f64 {
    let reference = average_similarity(exact_graph, exact);
    if reference == 0.0 {
        return if average_similarity(graph, exact) == 0.0 {
            1.0
        } else {
            f64::INFINITY
        };
    }
    average_similarity(graph, exact) / reference
}

/// Fraction of the exact graph's directed edges recovered by the
/// approximate graph (a stricter, identity-based measure the paper's
/// quality metric deliberately relaxes).
pub fn edge_recall(approx: &KnnGraph, exact: &KnnGraph) -> f64 {
    assert_eq!(
        approx.n_users(),
        exact.n_users(),
        "graphs cover different populations"
    );
    let mut hit = 0usize;
    let mut total = 0usize;
    for u in 0..exact.n_users() as u32 {
        let approx_users: Vec<u32> = approx.neighbors(u).iter().map(|s| s.user).collect();
        for s in exact.neighbors(u) {
            total += 1;
            if approx_users.contains(&s.user) {
                hit += 1;
            }
        }
    }
    if total == 0 {
        1.0
    } else {
        hit as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::BruteForce;
    use goldfinger_core::profile::ProfileStore;
    use goldfinger_core::similarity::ExplicitJaccard;
    use goldfinger_core::topk::Scored;

    fn profiles() -> ProfileStore {
        ProfileStore::from_item_lists(vec![
            (0..10).collect(),
            (0..8).collect(),
            (5..15).collect(),
            (100..110).collect(),
        ])
    }

    #[test]
    fn exact_graph_has_quality_one() {
        let p = profiles();
        let sim = ExplicitJaccard::new(&p);
        let exact = BruteForce::default().build(&sim, 2).graph;
        assert!((quality(&exact, &exact, &sim) - 1.0).abs() < 1e-12);
        assert!((edge_recall(&exact, &exact) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn worse_graph_has_lower_quality() {
        let p = profiles();
        let sim = ExplicitJaccard::new(&p);
        let exact = BruteForce::default().build(&sim, 2).graph;
        // Degrade user 0's neighbourhood: point it at the unrelated user 3.
        let mut lists: Vec<Vec<Scored>> = (0..4u32).map(|u| exact.neighbors(u).to_vec()).collect();
        lists[0] = vec![Scored { sim: 0.0, user: 3 }];
        let worse = KnnGraph::from_lists(2, lists);
        assert!(quality(&worse, &exact, &sim) < 1.0);
        assert!(edge_recall(&worse, &exact) < 1.0);
    }

    #[test]
    fn empty_graph_average_is_zero() {
        let p = profiles();
        let sim = ExplicitJaccard::new(&p);
        let g = KnnGraph::from_lists(2, vec![vec![]; 4]);
        assert_eq!(average_similarity(&g, &sim), 0.0);
    }

    #[test]
    fn quality_handles_zero_reference() {
        let p = ProfileStore::from_item_lists(vec![vec![1], vec![2]]);
        let sim = ExplicitJaccard::new(&p);
        let exact = BruteForce::default().build(&sim, 1).graph;
        // All similarities are 0: a matching graph still scores 1.
        assert_eq!(quality(&exact, &exact, &sim), 1.0);
    }
}
