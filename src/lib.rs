//! # GoldFinger
//!
//! A complete Rust implementation of *"Fingerprinting Big Data: The Case of
//! KNN Graph Construction"* (Guerraoui, Kermarrec, Ruas, Taïani — ICDE
//! 2019): Single Hash Fingerprints, fingerprint-accelerated KNN graph
//! construction, the b-bit minwise hashing baseline, the estimator's exact
//! distribution theory, privacy guarantees, and a KNN recommender.
//!
//! This facade crate re-exports the workspace's sub-crates under one roof:
//!
//! - [`core`] ([`goldfinger_core`]) — SHFs, hashing, profiles, providers;
//! - [`datasets`] ([`goldfinger_datasets`]) — loaders, synthetic data, CV;
//! - [`knn`] ([`goldfinger_knn`]) — Brute Force, NNDescent, Hyrec, LSH and
//!   KIFF behind the `KnnBuilder` trait and its registry;
//! - [`minhash`] ([`goldfinger_minhash`]) — the sketching baseline;
//! - [`theory`] ([`goldfinger_theory`]) — estimator law and privacy;
//! - [`recommend`] ([`goldfinger_recommend`]) — the application case study.
//!
//! ## End-to-end example
//!
//! ```
//! use goldfinger::prelude::*;
//!
//! // A small synthetic dataset with planted taste clusters.
//! let data = SynthConfig::ml1m().scaled(0.02).generate().prepare();
//!
//! // Native KNN graph…
//! let native = ExplicitJaccard::new(data.profiles());
//! let exact = BruteForce::default().build(&native, 10);
//!
//! // …and the GoldFinger version: fingerprint once, swap the provider.
//! let fingerprints = ShfParams::default().fingerprint_store(data.profiles());
//! let gf = ShfJaccard::new(&fingerprints);
//! let approx = BruteForce::default().build(&gf, 10);
//!
//! let q = quality(&approx.graph, &exact.graph, &native);
//! assert!(q > 0.8, "KNN quality {q}");
//! ```

pub use goldfinger_core as core;
pub use goldfinger_datasets as datasets;
pub use goldfinger_knn as knn;
pub use goldfinger_minhash as minhash;
pub use goldfinger_obs as obs;
pub use goldfinger_recommend as recommend;
pub use goldfinger_theory as theory;

/// One-stop imports for applications.
pub mod prelude {
    pub use goldfinger_core::blip::{BlipJaccard, BlipParams, BlipStore};
    pub use goldfinger_core::estimate::{corrected_jaccard, CorrectedShfJaccard};
    pub use goldfinger_core::hash::{DynHasher, HasherKind, ItemHasher};
    pub use goldfinger_core::profile::{ItemId, Profile, ProfileStore, UserId};
    pub use goldfinger_core::shf::{Shf, ShfParams, ShfStore};
    pub use goldfinger_core::similarity::{
        ExplicitCosine, ExplicitJaccard, ShfCosine, ShfJaccard, Similarity,
    };
    pub use goldfinger_core::topk::{Scored, TopK};
    pub use goldfinger_datasets::cv::{five_fold, FoldSplit};
    pub use goldfinger_datasets::model::{BinaryDataset, RatingsDataset};
    pub use goldfinger_datasets::sample::sample_least_popular;
    pub use goldfinger_datasets::stats::DatasetStats;
    pub use goldfinger_datasets::synth::SynthConfig;
    pub use goldfinger_knn::brute::BruteForce;
    pub use goldfinger_knn::builder::{BuildInput, ErasedBuilder, KnnBuilder};
    pub use goldfinger_knn::builders::{BuilderConfig, BuilderSpec};
    pub use goldfinger_knn::dynamic::DynamicKnn;
    pub use goldfinger_knn::graph::{KnnGraph, KnnResult};
    pub use goldfinger_knn::hyrec::Hyrec;
    pub use goldfinger_knn::kiff::Kiff;
    pub use goldfinger_knn::lsh::Lsh;
    pub use goldfinger_knn::metrics::{average_similarity, edge_recall, quality};
    pub use goldfinger_knn::nndescent::NNDescent;
    pub use goldfinger_minhash::{BbitParams, BbitStore};
    pub use goldfinger_obs::{
        BuildObserver, IterationEvent, NoopObserver, Phase, RecordingObserver, RunReport, SpanSet,
    };
    pub use goldfinger_recommend::{evaluate_fold, recommend_for_user, RecallStats};
    pub use goldfinger_theory::pair::ProfilePair;
    pub use goldfinger_theory::privacy::guarantees;
}
