//! `goldfinger` — command-line interface to the library.
//!
//! ```text
//! goldfinger stats       --synth ml1m [--scale 0.1]
//! goldfinger fingerprint --synth ml1m --bits 1024 --out fp.gfs
//! goldfinger knn         --synth ml1m --algo hyrec --k 30 [--goldfinger] --out graph.gfg
//! goldfinger recommend   --synth ml1m --algo brute --k 30 --user 0 --n 10
//! goldfinger privacy     --items 171356 --bits 1024 --cardinality 56
//! goldfinger serve       --synth ml1m --replay 100000 [--shards 8 --batch 256]
//! ```
//!
//! Datasets come either from `--synth {ml1m,ml10m,ml20m,am,dblp,gowalla}`
//! (Table-2-calibrated generators) or from `--ratings FILE --format
//! {dat,csv,edges}` (the original file formats).

use goldfinger::datasets::load::{load_edge_list, load_movielens_dat, load_ratings_csv};
use goldfinger::datasets::stats::DatasetStats;
use goldfinger::knn::builder::BuildInput;
use goldfinger::knn::builders::{self, BuilderConfig};
use goldfinger::knn::serial::write_knn_graph;
use goldfinger::prelude::*;
use goldfinger::theory::privacy::guarantees;
use std::collections::HashMap;
use std::process::ExitCode;

struct Cli {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Cli {
    fn parse(args: &[String]) -> Cli {
        let mut values = HashMap::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < args.len() {
            if let Some(key) = args[i].strip_prefix("--") {
                if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                    values.insert(key.to_string(), args[i + 1].clone());
                    i += 2;
                } else {
                    flags.push(key.to_string());
                    i += 1;
                }
            } else {
                i += 1;
            }
        }
        Cli { values, flags }
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    fn get_or(&self, key: &str, default: &str) -> String {
        self.get(key).unwrap_or(default).to_string()
    }

    fn parse_num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key}: cannot parse {v:?}")),
        }
    }

    fn has(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

fn usage() -> &'static str {
    "usage: goldfinger <stats|generate|fingerprint|knn|build|recommend|privacy|serve> [options]\n\
     \n\
     dataset options (stats/fingerprint/knn/recommend):\n\
       --synth ml1m|ml10m|ml20m|am|dblp|gowalla   synthetic dataset (default ml1m)\n\
       --scale F                                  user-count scale (default 0.1)\n\
       --ratings FILE --format dat|csv|edges      load a real ratings file instead\n\
       --seed N                                   RNG seed (default 42)\n\
     \n\
     generate:    --out FILE [--format dat|csv|edges]   export the synthetic dataset\n\
     fingerprint: --bits B (default 1024)  --out FILE (GFS1 format)\n\
                  --stream   two-pass streaming ingestion straight from\n\
                             --ratings FILE (bounded memory, bit-identical)\n\
                  --spill DIR   with --stream: write arena rows straight\n\
                                into a sealed on-disk store under DIR\n\
     knn:         --algo brute|hyrec|nndescent|lsh|kiff|cluster (default brute)\n\
                  --k K (default 30)  --goldfinger [--bits B]  --out FILE (GFG1)\n\
     build:       sharded out-of-core GoldFinger LSH build (spill-to-disk)\n\
                  --users N          synthetic population size (overrides --scale)\n\
                  --k K (default 10) --tables T (default 10) --bits B (default 256)\n\
                  --shards N         contiguous user shards (default 0 = derive\n\
                                     from --mem-budget; no budget = 1)\n\
                  --mem-budget BYTES target peak RSS (accepts 512m/2g suffixes)\n\
                  --spill DIR        spill directory (default gf-spill)\n\
                  --no-spill         keep arena + index on the heap (still shards)\n\
                  --max-bucket N     skip LSH buckets larger than N users (0 = off)\n\
                  --compact          f32 segment sims (smaller spill, not bit-exact)\n\
                  --out FILE         stream the stitched graph to FILE (GFG1)\n\
     recommend:   knn options plus --user U (default 0) --n N (default 10)\n\
     privacy:     --items M --bits B --cardinality C\n\
     serve:       --replay N (ops, default 100000)  --update-pct P (default 30)\n\
                  --ops-file FILE   stream a recorded op log (`L u` / `U u i,j`\n\
                                    lines) instead of the synthetic generator\n\
                  --shards S (default 8)  --batch B (default 256)\n\
                  --probes P (default 4)  --threads T (default 1)\n\
                  --metrics-addr HOST:PORT   serve /metrics, /healthz and /epoch\n\
                  --hold SECS                keep the exposition server up after\n\
                                             the replay finishes (default 0)\n\
                  replays an interleaved update+lookup log against the sharded\n\
                  online service and reports latency/throughput\n\
     \n\
     environment:\n\
       GF_TRACE=FILE.json      record a flight-recorder trace of the run and\n\
                               write it as Chrome trace-event JSON on exit\n\
       GF_TRACE_CAP=N          per-thread event-ring capacity (default 2^20)"
}

fn synth_preset(name: &str) -> Result<SynthConfig, String> {
    Ok(match name.to_lowercase().as_str() {
        "ml1m" => SynthConfig::ml1m(),
        "ml10m" => SynthConfig::ml10m(),
        "ml20m" => SynthConfig::ml20m(),
        "am" | "amazon" | "amazonmovies" => SynthConfig::amazon_movies(),
        "dblp" => SynthConfig::dblp(),
        "gowalla" | "gw" => SynthConfig::gowalla(),
        other => return Err(format!("unknown --synth {other:?}")),
    })
}

/// Parses a byte count with optional `k`/`m`/`g` (KiB/MiB/GiB) suffix.
fn parse_bytes(v: &str) -> Result<u64, String> {
    let v = v.trim().to_lowercase();
    let (num, shift) = match v.as_bytes().last() {
        Some(b'k') => (&v[..v.len() - 1], 10),
        Some(b'm') => (&v[..v.len() - 1], 20),
        Some(b'g') => (&v[..v.len() - 1], 30),
        _ => (v.as_str(), 0),
    };
    let n: u64 = num
        .parse()
        .map_err(|_| format!("--mem-budget: cannot parse {v:?} (e.g. 512m, 2g)"))?;
    n.checked_shl(shift)
        .filter(|&b| b >> shift == n)
        .ok_or_else(|| format!("--mem-budget: {v:?} overflows"))
}

/// Runs the out-of-core build over any profile source: streamed to a GFG1
/// file when `--out` is given, stitched in memory (and summarized)
/// otherwise.
fn run_ooc<P: goldfinger::core::profile::ProfileSource + ?Sized>(
    cli: &Cli,
    source: &P,
    params: &ShfParams<DynHasher>,
    cfg: &goldfinger::knn::oocbuild::OocConfig,
) -> Result<(goldfinger::knn::oocbuild::OocStats, Option<String>), String> {
    use goldfinger::knn::oocbuild;
    match cli.get("out") {
        Some(out) => {
            let stats = oocbuild::build_to_disk(source, params, cfg, std::path::Path::new(out))
                .map_err(|e| format!("ooc build: {e}"))?;
            Ok((stats, Some(out.to_string())))
        }
        None => {
            let (graph, stats) =
                oocbuild::build(source, params, cfg).map_err(|e| format!("ooc build: {e}"))?;
            println!(
                "graph: {} edges, mean stored similarity {:.4}",
                graph.n_edges(),
                graph.mean_stored_similarity()
            );
            Ok((stats, None))
        }
    }
}

fn load_dataset(cli: &Cli) -> Result<BinaryDataset, String> {
    if let Some(path) = cli.get("ratings") {
        let format = cli.get_or("format", "dat");
        let raw = match format.as_str() {
            "dat" => load_movielens_dat(path, path),
            "csv" => load_ratings_csv(path, path),
            "edges" => load_edge_list(path, path),
            other => return Err(format!("unknown --format {other:?} (dat|csv|edges)")),
        }
        .map_err(|e| format!("loading {path}: {e}"))?;
        return Ok(raw.prepare());
    }
    let preset = synth_preset(&cli.get_or("synth", "ml1m"))?;
    let scale: f64 = cli.parse_num("scale", 0.1)?;
    let seed: u64 = cli.parse_num("seed", 42)?;
    Ok(preset.scaled(scale).with_seed(seed).generate().prepare())
}

fn build_graph(cli: &Cli, data: &BinaryDataset) -> Result<(KnnResult, bool), String> {
    let k: usize = cli.parse_num("k", 30)?;
    let algo = cli.get_or("algo", "brute");
    let use_gf = cli.has("goldfinger");
    let bits: u32 = cli.parse_num("bits", 1024)?;
    let seed: u64 = cli.parse_num("seed", 42)?;
    let profiles = data.profiles();

    let result = if use_gf {
        let store = ShfParams::new(bits, DynHasher::default()).fingerprint_store(profiles);
        let sim = ShfJaccard::new(&store);
        dispatch_algo(&algo, profiles, &sim, k, seed)?
    } else {
        let sim = ExplicitJaccard::new(profiles);
        dispatch_algo(&algo, profiles, &sim, k, seed)?
    };
    Ok((result, use_gf))
}

fn dispatch_algo<S: Similarity>(
    algo: &str,
    profiles: &ProfileStore,
    sim: &S,
    k: usize,
    seed: u64,
) -> Result<KnnResult, String> {
    let spec = builders::get(algo).map_err(|e| format!("--algo: {e}"))?;
    let builder = spec.instantiate(&BuilderConfig { seed, threads: 1 });
    Ok(builder.build_erased(
        BuildInput::with_profiles(sim as &dyn Similarity, profiles),
        k,
        &NoopObserver,
    ))
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().cloned() else {
        return Err(usage().to_string());
    };
    let cli = Cli::parse(&args[1..]);

    match command.as_str() {
        "stats" => {
            let data = load_dataset(&cli)?;
            let s = DatasetStats::compute(&data);
            println!("dataset        users    items   ratings>3    |Pu|    |Pi|  density");
            println!("{}", s.table2_row());
        }
        "fingerprint" => {
            let bits: u32 = cli.parse_num("bits", 1024)?;
            let params = ShfParams::new(bits, DynHasher::default());
            let t0 = std::time::Instant::now();
            let store = if cli.has("stream") {
                // Streaming ingestion: two passes over the file, arena rows
                // written in place — no RatingsDataset/ProfileStore, bounded
                // memory. Bit-identical to the in-memory path below.
                let path = cli
                    .get("ratings")
                    .ok_or_else(|| "--stream requires --ratings FILE".to_string())?;
                let format = match cli.get_or("format", "dat").as_str() {
                    "dat" => goldfinger::datasets::RatingsFormat::MovielensDat,
                    "csv" => goldfinger::datasets::RatingsFormat::Csv,
                    "edges" => goldfinger::datasets::RatingsFormat::EdgeList,
                    other => return Err(format!("unknown --format {other:?} (dat|csv|edges)")),
                };
                let cfg = goldfinger::datasets::StreamConfig::default();
                let (store, summary) = match cli.get("spill") {
                    // Arena rows land in a sealed on-disk store under DIR
                    // instead of the heap (Linux mmap backend).
                    Some(dir) => goldfinger::datasets::stream_fingerprint_spilled(
                        path, format, &params, &cfg, dir,
                    ),
                    None => goldfinger::datasets::stream_fingerprint(path, format, &params, &cfg),
                }
                .map_err(|e| format!("streaming {path}: {e}"))?;
                if let Some(dir) = cli.get("spill") {
                    println!(
                        "spilled arena: {dir}/arena.words ({})",
                        store.backend_kind()
                    );
                }
                println!(
                    "streamed {} ratings ({} positive) over {} users \
                     ({} kept) and {} items",
                    summary.n_ratings,
                    summary.n_positive,
                    summary.raw_users,
                    summary.kept_users,
                    summary.n_items
                );
                store
            } else {
                let data = load_dataset(&cli)?;
                params.fingerprint_store(data.profiles())
            };
            println!(
                "fingerprinted {} profiles into {bits}-bit SHFs in {:?} ({} bytes/user)",
                store.len(),
                t0.elapsed(),
                bits / 8 + 4
            );
            if let Some(out) = cli.get("out") {
                let mut file =
                    std::fs::File::create(out).map_err(|e| format!("creating {out}: {e}"))?;
                goldfinger::core::serial::write_shf_store(&store, &mut file)
                    .map_err(|e| format!("writing {out}: {e}"))?;
                println!("wrote {out}");
            }
        }
        "knn" => {
            let data = load_dataset(&cli)?;
            let (result, used_gf) = build_graph(&cli, &data)?;
            println!(
                "{} graph over {} users: {} edges, {} similarity evals, {:?}{}",
                cli.get_or("algo", "brute"),
                result.graph.n_users(),
                result.graph.n_edges(),
                result.stats.similarity_evals,
                result.stats.wall,
                if used_gf {
                    " (GoldFinger)"
                } else {
                    " (native)"
                },
            );
            println!(
                "mean stored similarity: {:.4}",
                result.graph.mean_stored_similarity()
            );
            if let Some(out) = cli.get("out") {
                let mut file =
                    std::fs::File::create(out).map_err(|e| format!("creating {out}: {e}"))?;
                write_knn_graph(&result.graph, &mut file)
                    .map_err(|e| format!("writing {out}: {e}"))?;
                println!("wrote {out}");
            }
        }
        "build" => {
            use goldfinger::datasets::StreamProfiles;
            use goldfinger::knn::oocbuild::OocConfig;

            let k: usize = cli.parse_num("k", 10)?;
            let tables: usize = cli.parse_num("tables", 10)?;
            let bits: u32 = cli.parse_num("bits", 256)?;
            let seed: u64 = cli.parse_num("seed", 42)?;
            let spill_dir = cli.get_or("spill", "gf-spill");

            let mut cfg = OocConfig::new(k, tables, seed, spill_dir.as_str());
            cfg.shards = cli.parse_num("shards", 0)?;
            cfg.mem_budget = match cli.get("mem-budget") {
                Some(v) => parse_bytes(v)?,
                None => 0,
            };
            cfg.spill = !cli.has("no-spill");
            cfg.max_bucket = cli.parse_num("max-bucket", 0)?;
            cfg.compact_segments = cli.has("compact");
            let params = ShfParams::new(bits, DynHasher::default());

            // Profile source: a per-user-derivable synthetic stream (any
            // size, no materialization) or an in-memory loaded dataset.
            let (stats, stitched) = if cli.get("ratings").is_some() {
                let data = load_dataset(&cli)?;
                run_ooc(&cli, data.profiles(), &params, &cfg)?
            } else {
                let preset = synth_preset(&cli.get_or("synth", "ml1m"))?;
                let scale: f64 = cli.parse_num("scale", 0.1)?;
                let mut synth = preset.scaled(scale).with_seed(seed);
                if let Some(users) = cli.get("users") {
                    synth.n_users = users
                        .parse()
                        .map_err(|_| format!("--users: cannot parse {users:?}"))?;
                }
                let source = StreamProfiles::new(&synth);
                println!(
                    "streaming {} synthetic users ({}, ~{:.0} items/user)",
                    synth.n_users, synth.name, synth.mean_profile
                );
                run_ooc(&cli, &source, &params, &cfg)?
            };
            println!(
                "ooc build: {} users, {} shards, {} evals, backend {} \
                 ({} spilled bytes)",
                stats.n_users,
                stats.shards,
                stats.similarity_evals,
                stats.backend,
                stats.spilled_bytes
            );
            println!(
                "  fingerprint {:?} · index {:?} · scan {:?} · stitch {:?} · total {:?}",
                stats.fingerprint_wall,
                stats.index_wall,
                stats.scan_wall,
                stats.stitch_wall,
                stats.wall
            );
            if let Some(snap) = goldfinger::obs::mem::snapshot() {
                println!(
                    "  rss {} MiB · peak {} MiB{}",
                    snap.rss_kb / 1024,
                    snap.peak_kb / 1024,
                    if cfg.mem_budget > 0 {
                        format!(" · budget {} MiB", cfg.mem_budget >> 20)
                    } else {
                        String::new()
                    }
                );
            }
            if let Some(out) = stitched {
                println!("wrote {out}");
            }
        }
        "recommend" => {
            let data = load_dataset(&cli)?;
            let (result, _) = build_graph(&cli, &data)?;
            let user: u32 = cli.parse_num("user", 0)?;
            let n: usize = cli.parse_num("n", 10)?;
            if user as usize >= data.n_users() {
                return Err(format!(
                    "--user {user} out of range (population {})",
                    data.n_users()
                ));
            }
            let recs = recommend_for_user(&result.graph, &data, user, n);
            if recs.is_empty() {
                println!("no recommendations for user {user} (empty neighbourhood?)");
            }
            for r in recs {
                println!("item {:>8}  score {:.3}", r.item, r.score);
            }
        }
        "generate" => {
            // Export a synthetic dataset in a loadable format.
            if cli.get("ratings").is_some() {
                return Err("generate only works with --synth datasets".into());
            }
            let scale: f64 = cli.parse_num("scale", 0.1)?;
            let seed: u64 = cli.parse_num("seed", 42)?;
            let raw = synth_preset(&cli.get_or("synth", "ml1m"))?
                .scaled(scale)
                .with_seed(seed)
                .generate();
            let out = cli
                .get("out")
                .ok_or_else(|| "generate requires --out FILE".to_string())?;
            let mut file =
                std::fs::File::create(out).map_err(|e| format!("creating {out}: {e}"))?;
            match cli.get_or("format", "dat").as_str() {
                "dat" => goldfinger::datasets::write::write_movielens_dat(&raw, &mut file),
                "csv" => goldfinger::datasets::write::write_ratings_csv(&raw, &mut file),
                "edges" => goldfinger::datasets::write::write_edge_list(&raw, &mut file),
                other => return Err(format!("unknown --format {other:?} (dat|csv|edges)")),
            }
            .map_err(|e| format!("writing {out}: {e}"))?;
            println!(
                "wrote {} ratings for {} users to {out}",
                raw.ratings().len(),
                raw.n_users()
            );
        }
        "serve" => {
            use goldfinger::knn::oplog::OpLogReader;
            use goldfinger::knn::serve::{
                replay_stream, synth_op_stream, KnnService, Op, ServeConfig,
            };
            use goldfinger::obs::{Json, MetricsServer, Registry, StatusFn};
            use std::sync::Arc;

            let data = load_dataset(&cli)?;
            let n = data.n_users();
            let k: usize = cli.parse_num("k", 30)?;
            let bits: u32 = cli.parse_num("bits", 1024)?;
            let seed: u64 = cli.parse_num("seed", 42)?;
            let n_ops: usize = cli.parse_num("replay", 100_000)?;
            let update_pct: u32 = cli.parse_num("update-pct", 30)?;
            let cfg = ServeConfig {
                shards: cli.parse_num("shards", 8)?,
                batch: cli.parse_num("batch", 256)?,
                probes: cli.parse_num("probes", 4)?,
                seed,
                threads: cli.parse_num("threads", 1)?,
            };

            let params = ShfParams::new(bits, DynHasher::default());
            let store = params.fingerprint_store(data.profiles());
            let sim = ShfJaccard::new(&store);
            let result = dispatch_algo("brute", data.profiles(), &sim, k, seed)?;

            let reg = Arc::new(Registry::new());
            let svc = Arc::new(KnnService::new(
                &result.graph,
                &store,
                *params.hasher(),
                cfg,
                &reg,
            ));
            // Optional live exposition: /metrics from the replay's registry,
            // /epoch reporting the service's published epoch + digest.
            let server = match cli.get("metrics-addr") {
                Some(addr) => {
                    let status_svc = svc.clone();
                    let status: StatusFn = Box::new(move || {
                        let snap = status_svc.snapshot();
                        Json::obj(vec![
                            ("epoch", Json::Num(snap.epoch() as f64)),
                            ("digest", Json::Str(format!("{:016x}", snap.digest()))),
                        ])
                    });
                    let server = MetricsServer::start(addr, reg.clone(), Some(status))
                        .map_err(|e| format!("binding --metrics-addr {addr}: {e}"))?;
                    println!("metrics: http://{}/metrics", server.local_addr());
                    Some(server)
                }
                None => None,
            };
            // The op log is streamed, not materialized: either the lazy
            // synthetic generator or a line-at-a-time file reader.
            let ops: Box<dyn Iterator<Item = Op>> = match cli.get("ops-file") {
                Some(path) => {
                    let file = std::fs::File::open(path)
                        .map_err(|e| format!("opening --ops-file {path}: {e}"))?;
                    let path = path.to_string();
                    Box::new(OpLogReader::new(file).map(move |r| match r {
                        Ok(op) => op,
                        Err(e) => {
                            eprintln!("reading --ops-file {path}: {e}");
                            std::process::exit(1);
                        }
                    }))
                }
                None => Box::new(synth_op_stream(
                    n,
                    data.n_items() as u32,
                    n_ops,
                    update_pct,
                    seed ^ 0x0b5,
                )),
            };
            let t0 = std::time::Instant::now();
            // Route the parallel drain phases through the work-stealing
            // pool (rather than the raw scoped-thread fallback) so traced
            // runs attribute them to pool tasks.
            let threads: usize = cli.parse_num("threads", 1)?;
            let outcome = if threads > 1 {
                goldfinger::core::pool::Pool::new(threads).install(|| replay_stream(&svc, ops))
            } else {
                replay_stream(&svc, ops)
            };
            let wall = t0.elapsed();
            let n_ops = (outcome.lookups + outcome.updates) as usize;

            let p = |h: &goldfinger::obs::Histogram, q: f64| {
                h.quantile_upper_bound(q).as_secs_f64() * 1e6
            };
            let lookup = reg.histogram("serve.lookup_latency");
            let update = reg.histogram("serve.update_latency");
            println!(
                "served {n_ops} ops over {n} users in {wall:?} \
                 ({:.0} ops/s)",
                n_ops as f64 / wall.as_secs_f64()
            );
            println!(
                "  lookups {:>8}   p50 {:>9.1}µs   p99 {:>9.1}µs",
                outcome.lookups,
                p(&lookup, 0.5),
                p(&lookup, 0.99)
            );
            println!(
                "  updates {:>8}   p50 {:>9.1}µs   p99 {:>9.1}µs",
                outcome.updates,
                p(&update, 0.5),
                p(&update, 0.99)
            );
            println!(
                "  epochs {} · repairs {} · evals {}",
                outcome.final_epoch,
                reg.counter("serve.repairs").get(),
                reg.counter("serve.repair_evals").get()
            );
            println!("  final digest {:016x}", outcome.final_digest);
            if let Some(server) = server {
                let hold: u64 = cli.parse_num("hold", 0)?;
                if hold > 0 {
                    println!("holding http://{}/metrics for {hold}s", server.local_addr());
                    std::thread::sleep(std::time::Duration::from_secs(hold));
                }
                server.stop();
            }
        }
        "privacy" => {
            let items: usize = cli.parse_num("items", 171_356)?;
            let bits: u32 = cli.parse_num("bits", 1024)?;
            let card: u32 = cli.parse_num("cardinality", 56)?;
            let g = guarantees(items, bits, card);
            println!(
                "m = {items}, b = {bits}, c_u = {card}:\n  k-anonymity: 2^{:.0}\n  l-diversity: {:.0}",
                g.anonymity_log2, g.diversity
            );
        }
        "help" | "--help" | "-h" => println!("{}", usage()),
        other => return Err(format!("unknown command {other:?}\n\n{}", usage())),
    }
    Ok(())
}

fn main() -> ExitCode {
    // Armed by GF_TRACE=FILE.json; drains and writes the trace on exit.
    let _trace = goldfinger::obs::TraceSession::from_env();
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
